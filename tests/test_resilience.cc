// Resilience layer: deadlines, retry budgets, hedging, load shedding,
// circuit breakers, wear-driven health management and chaos composition
// (src/runtime/resilience.*, wired through src/runtime/serving.cc).
//
// The serving-level tests drive real ServingRuntime runs: the resilience
// machinery only counts if it holds up with arrivals, lane carving and
// bank accounting all live. Primitives (budget, breaker, shedder,
// monitor) also get direct state-machine tests.

#include "runtime/resilience.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "model/scheduler.h"
#include "runtime/serving.h"

namespace cryptopim::runtime {
namespace {

ServingConfig chaos_config(std::uint64_t seed, double duration_us = 12000.0) {
  ServingConfig cfg;
  cfg.workload.mix = {{256, 2.0}, {1024, 1.0}};
  cfg.workload.tenants = 4;
  cfg.workload.seed = seed;
  cfg.arrival_rate_per_s = 20000.0;
  cfg.duration_us = duration_us;
  cfg.resilience = ResilienceConfig::chaos_preset(seed);
  return cfg;
}

/// Work conservation under the resilience layer: every submitted request
/// is rejected at one of the three admission gates or admitted; every
/// admitted request ends exactly one way.
void expect_resilient_work_conserved(const ServingReport& r) {
  EXPECT_EQ(r.submitted, r.admitted + r.rejected + r.rejected_unservable +
                             r.resilience.rejected_deadline);
  EXPECT_EQ(r.admitted, r.completed + r.queued + r.resilience.timed_out +
                            r.resilience.shed + r.resilience.failed);
  // Global counters sum the per-tenant ledgers field-for-field: deadline
  // rejects live in their own tenant column, not in `rejected`.
  std::uint64_t tenant_rejected = 0;
  std::uint64_t tenant_rejected_deadline = 0;
  for (const auto& [id, t] : r.tenants) {
    tenant_rejected += t.rejected;
    tenant_rejected_deadline += t.rejected_deadline;
  }
  EXPECT_EQ(tenant_rejected, r.rejected + r.rejected_unservable);
  EXPECT_EQ(tenant_rejected_deadline, r.resilience.rejected_deadline);
}

std::string json_text(const ServingReport& r) {
  std::ostringstream os;
  r.to_json().write(os);
  return os.str();
}

// ------------------------------------------------------------ RetryBudget --

TEST(RetryBudget, AccruesPerAdmissionAndDeniesWhenDry) {
  RetryBudget b(/*tenants=*/2, /*ratio=*/0.5, /*cap=*/4.0);
  // Cold-start reserve: a fresh bucket can pay for a couple of retries.
  EXPECT_TRUE(b.try_spend(0));
  EXPECT_TRUE(b.try_spend(0));
  EXPECT_FALSE(b.try_spend(0));  // dry
  // Two admissions earn one token at ratio 0.5.
  b.on_admitted(0);
  EXPECT_FALSE(b.try_spend(0));
  b.on_admitted(0);
  EXPECT_TRUE(b.try_spend(0));
  // Tenant buckets are independent.
  EXPECT_TRUE(b.try_spend(1));
}

TEST(RetryBudget, CapBoundsAccrual) {
  RetryBudget b(1, /*ratio=*/1.0, /*cap=*/3.0);
  for (int i = 0; i < 100; ++i) b.on_admitted(0);
  EXPECT_DOUBLE_EQ(b.tokens(0), 3.0);
  EXPECT_TRUE(b.try_spend(0));
  EXPECT_TRUE(b.try_spend(0));
  EXPECT_TRUE(b.try_spend(0));
  EXPECT_FALSE(b.try_spend(0));
}

// --------------------------------------------------------- CircuitBreaker --

TEST(CircuitBreaker, OpensAfterKConsecutiveFailures) {
  CircuitBreaker cb(/*k=*/3, /*open_cycles=*/100);
  EXPECT_TRUE(cb.can_accept(0));
  EXPECT_FALSE(cb.record(false, 10));
  EXPECT_FALSE(cb.record(false, 20));
  // A success resets the consecutive count.
  cb.record(true, 25);
  EXPECT_FALSE(cb.record(false, 30));
  EXPECT_FALSE(cb.record(false, 40));
  EXPECT_TRUE(cb.record(false, 50));  // third consecutive: opened
  EXPECT_EQ(cb.state(), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(cb.can_accept(60));
  EXPECT_EQ(cb.open_until(), 150u);
}

TEST(CircuitBreaker, HalfOpenProbeClosesOnSuccess) {
  CircuitBreaker cb(2, 100);
  cb.record(false, 0);
  cb.record(false, 0);  // open until 100
  EXPECT_FALSE(cb.can_accept(99));
  EXPECT_TRUE(cb.can_accept(100));  // probe possible, state untouched
  EXPECT_EQ(cb.state(), CircuitBreaker::State::kOpen);
  EXPECT_TRUE(cb.note_dispatch(100));  // this dispatch is the probe
  EXPECT_EQ(cb.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_FALSE(cb.can_accept(110));  // one probe at a time
  cb.record(true, 120);
  EXPECT_EQ(cb.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(cb.can_accept(121));
}

TEST(CircuitBreaker, HalfOpenProbeFailureReopens) {
  CircuitBreaker cb(2, 100);
  cb.record(false, 0);
  cb.record(false, 0);
  cb.note_dispatch(100);
  EXPECT_TRUE(cb.record(false, 130));  // probe failed: re-opened
  EXPECT_EQ(cb.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(cb.open_until(), 230u);
}

TEST(CircuitBreaker, CancelledProbeRevertsToOpenInsteadOfWedging) {
  CircuitBreaker cb(2, 100);
  cb.record(false, 0);
  cb.record(false, 0);  // open until 100
  cb.note_dispatch(100);
  EXPECT_FALSE(cb.can_accept(110));  // probe out
  // The probe is cancelled without an outcome (hedge loser, lane
  // teardown): the breaker must re-open with a fresh window — a probe
  // that never reports would otherwise wedge the lane half-open forever.
  cb.note_cancelled(110);
  EXPECT_EQ(cb.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(cb.open_until(), 210u);
  EXPECT_FALSE(cb.can_accept(209));
  EXPECT_TRUE(cb.can_accept(210));  // probes again after the fresh window
  // Cancelling when no probe is in flight is a no-op.
  cb.note_dispatch(210);
  cb.record(true, 220);
  cb.note_cancelled(230);
  EXPECT_EQ(cb.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(cb.can_accept(231));
}

TEST(CircuitBreaker, DisabledAlwaysAccepts) {
  CircuitBreaker cb;  // k = 0
  for (int i = 0; i < 10; ++i) cb.record(false, i);
  EXPECT_TRUE(cb.can_accept(100));
  EXPECT_FALSE(cb.note_dispatch(100));
}

// ----------------------------------------------------------- CoDelShedder --

TEST(CoDelShedder, DropsOnlyAfterAFullIntervalAboveTarget) {
  CoDelShedder s(/*target=*/100, /*interval=*/1000);
  EXPECT_TRUE(s.enabled());
  EXPECT_FALSE(s.should_drop(50, 0));     // below target
  EXPECT_FALSE(s.should_drop(200, 10));   // first above: arm, no drop
  EXPECT_FALSE(s.should_drop(200, 500));  // interval not elapsed
  EXPECT_TRUE(s.should_drop(200, 1010));  // above for a full interval
  // Dropping phase: cadence tightens as interval / sqrt(count) — the
  // second drop lands a full interval later, the third ~interval/sqrt(2)
  // after that.
  EXPECT_FALSE(s.should_drop(200, 1200));
  EXPECT_TRUE(s.should_drop(200, 2010));   // 1010 + 1000/sqrt(1)
  EXPECT_FALSE(s.should_drop(200, 2500));
  EXPECT_TRUE(s.should_drop(200, 2717));   // 2010 + 1000/sqrt(2) ~ 2717
}

TEST(CoDelShedder, RecoveryBelowTargetResetsThePhase) {
  CoDelShedder s(100, 1000);
  s.should_drop(200, 0);
  EXPECT_TRUE(s.should_drop(200, 1000));
  EXPECT_FALSE(s.should_drop(50, 1100));   // recovered: phase exits
  EXPECT_FALSE(s.should_drop(200, 1200));  // must re-arm a full interval
  EXPECT_FALSE(s.should_drop(200, 2100));
  EXPECT_TRUE(s.should_drop(200, 2200));
}

TEST(CoDelShedder, DisabledNeverDrops) {
  CoDelShedder s;
  EXPECT_FALSE(s.enabled());
  EXPECT_FALSE(s.should_drop(1u << 30, 1u << 30));
}

// ---------------------------------------------------------- HealthMonitor --

TEST(HealthMonitor, WearCrossesLimitExactlyOnce) {
  ResilienceConfig cfg;
  cfg.wear_limit = 10;
  HealthMonitor hm(cfg, /*seed=*/1);
  bool crossed = false;
  for (int i = 0; i < 10; ++i) crossed = hm.note_dispatch(0);
  EXPECT_TRUE(crossed);  // the 10th write crossed
  EXPECT_FALSE(hm.note_dispatch(0));  // already past: no second crossing
  EXPECT_EQ(hm.wear_writes(0), 11u);
}

TEST(HealthMonitor, DrainThresholdLeadsTheLimit) {
  ResilienceConfig cfg;
  cfg.wear_limit = 100;
  cfg.drain_fraction = 0.9;
  HealthMonitor hm(cfg, 1);
  for (int i = 0; i < 89; ++i) EXPECT_FALSE(hm.note_dispatch(0));
  EXPECT_FALSE(hm.wants_drain(0));
  hm.note_dispatch(0);  // 90th write
  EXPECT_TRUE(hm.wants_drain(0));
  EXPECT_DOUBLE_EQ(hm.wear_fraction(0), 0.9);
  // A remap restarts wear from zero (fresh banks).
  hm.on_remap(0);
  EXPECT_EQ(hm.wear_writes(0), 0u);
  EXPECT_FALSE(hm.wants_drain(0));
}

TEST(HealthMonitor, FailuresDepressScoreAndScrubForgivesThem) {
  ResilienceConfig cfg;
  cfg.scrub_threshold = 0.7;
  HealthMonitor hm(cfg, 1);
  EXPECT_DOUBLE_EQ(hm.score(0), 1.0);
  for (int i = 0; i < 8; ++i) hm.record_verify(0, false);
  EXPECT_LT(hm.score(0), 0.7);
  EXPECT_TRUE(hm.wants_scrub(0));
  hm.on_scrub(0);
  EXPECT_DOUBLE_EQ(hm.score(0), 1.0);
  EXPECT_FALSE(hm.wants_scrub(0));
}

// ------------------------------------------------- serving: deadlines ------

TEST(ResilientServing, InfeasibleArrivalsRejectedAtAdmission) {
  // Offer several times one lane's capacity with a deadline only a bit
  // above the unloaded service time: the backlog-aware admission check
  // must reject what cannot make it instead of queueing doomed work.
  ServingConfig cfg;
  cfg.workload.mix = {{4096, 1.0}};
  cfg.workload.seed = 3;
  cfg.arrival_rate_per_s =
      4.0 * model::class_capacity_per_s(cfg.chip, 4096, 0, cfg.cycle_ns);
  cfg.duration_us = 4000.0;
  // Unloaded 4096 service is ~400 us: 600 leaves room for a short queue
  // only, so the saturating tail must be rejected up front.
  cfg.resilience.deadline_us = 600.0;
  const auto r = ServingRuntime(cfg).run();
  EXPECT_TRUE(r.resilience_enabled);
  EXPECT_GT(r.resilience.rejected_deadline, 0u);
  EXPECT_GT(r.completed, 0u);
  expect_resilient_work_conserved(r);
  // Admission control means almost nothing admitted then times out.
  EXPECT_LE(r.resilience.timed_out, r.admitted / 10);
}

TEST(ResilientServing, QueuedRequestsTimeOutAtTheDeadline) {
  // Admission's feasibility estimate assumes lanes keep serving; when
  // corrupting chaos episodes trip the circuit breaker, the lane goes
  // dark *after* requests were admitted and the queue behind it passes
  // its deadline — the case the timeout cancellation exists for. A
  // 16-bank chip holds exactly one 4096 lane, so an open breaker
  // strands the whole class with no sibling lane to absorb the work.
  ServingConfig cfg;
  cfg.chip.total_banks = 16;
  cfg.chip.spare_banks = 0;
  cfg.workload.mix = {{4096, 1.0}};
  cfg.workload.seed = 5;
  cfg.arrival_rate_per_s =
      0.8 * model::class_capacity_per_s(cfg.chip, 4096, 0, cfg.cycle_ns);
  cfg.duration_us = 2500.0;
  cfg.queue_capacity = 1u << 20;  // no backpressure: timeouts must act
  auto& res = cfg.resilience;
  // Unloaded service is ~400 us, so admission tolerates ~100 us of
  // estimated wait; a breaker open for ~576 us outlasts any deadline
  // still in the queue.
  res.deadline_us = 500.0;
  res.breaker_k = 2;
  res.breaker_open_cycles = 1u << 19;
  res.max_retries = 2;
  res.retry_budget_ratio = 1.0;
  res.chaos.enabled = true;
  res.chaos.seed = 5;
  res.chaos.slow_fraction = 0.0;  // every episode corrupts
  res.chaos.mean_interval_us = 40.0;
  res.chaos.mean_duration_us = 80.0;
  const auto r = ServingRuntime(cfg).run();
  EXPECT_GT(r.resilience.timed_out, 0u);
  EXPECT_GT(r.resilience.breaker_opens, 0u);
  expect_resilient_work_conserved(r);
}

// ------------------------------------------------- serving: hedging --------

TEST(ResilientServing, HedgesLaunchAndConserveWork) {
  ServingConfig cfg;
  cfg.workload.mix = {{256, 1.0}};
  cfg.workload.tenants = 2;
  cfg.workload.seed = 7;
  cfg.arrival_rate_per_s =
      0.5 * model::class_capacity_per_s(cfg.chip, 256, 0, cfg.cycle_ns);
  cfg.duration_us = 4000.0;
  cfg.resilience.hedge = true;
  cfg.resilience.hedge_delay_us = 1.0;  // hedge nearly everything
  const auto r = ServingRuntime(cfg).run();
  EXPECT_GT(r.resilience.hedges, 0u);
  // Every hedged pair resolves: one side completes, the other cancels.
  EXPECT_EQ(r.resilience.hedge_cancelled, r.resilience.hedges);
  EXPECT_EQ(r.completed, r.admitted);  // each request delivered once
  expect_resilient_work_conserved(r);
}

// ------------------------------------------------- serving: shedding -------

TEST(ResilientServing, CoDelShedsUnderSustainedOverload) {
  ServingConfig cfg;
  cfg.workload.mix = {{4096, 1.0}};
  cfg.workload.seed = 9;
  cfg.arrival_rate_per_s =
      3.0 * model::class_capacity_per_s(cfg.chip, 4096, 0, cfg.cycle_ns);
  cfg.duration_us = 2500.0;
  cfg.queue_capacity = 1u << 20;  // shedding, not backpressure, must act
  cfg.resilience.codel_target_us = 100.0;
  cfg.resilience.codel_interval_us = 100.0;
  const auto r = ServingRuntime(cfg).run();
  EXPECT_GT(r.resilience.shed, 0u);
  EXPECT_GT(r.completed, 0u);
  expect_resilient_work_conserved(r);
}

// ------------------------------------------------- serving: wear -----------

TEST(ResilientServing, ProactiveDrainBeatsWearCorruption) {
  // With the monitor draining at 90% of the wear limit, lanes remap
  // before ever corrupting: the whole point of health-driven draining.
  ServingConfig cfg;
  cfg.workload.mix = {{256, 1.0}};
  cfg.workload.seed = 4;
  // Low absolute load: one lane carries everything, so its wear counter
  // climbs fast and the drain threshold trips repeatedly.
  cfg.arrival_rate_per_s = 20000.0;
  cfg.duration_us = 8000.0;
  cfg.resilience.wear_limit = 64;
  const auto r = ServingRuntime(cfg).run();
  EXPECT_GT(r.resilience.proactive_remaps, 0u);
  EXPECT_EQ(r.resilience.wear_corruptions, 0u);
  EXPECT_EQ(r.resilience.wrong_accepted, 0u);
  expect_resilient_work_conserved(r);
}

TEST(ResilientServing, DisablingTheDrainLetsLanesWearOut) {
  // Control experiment: push the drain threshold beyond the limit and
  // the same traffic wears lanes into corruption — proving the drain in
  // the test above is load-bearing, not incidental.
  ServingConfig cfg;
  cfg.workload.mix = {{256, 1.0}};
  cfg.workload.seed = 4;
  cfg.arrival_rate_per_s = 20000.0;
  cfg.duration_us = 8000.0;
  cfg.resilience.wear_limit = 64;
  cfg.resilience.drain_fraction = 2.0;  // never proactively drains
  cfg.resilience.max_retries = 3;
  cfg.resilience.retry_budget_ratio = 1.0;
  const auto r = ServingRuntime(cfg).run();
  EXPECT_GT(r.resilience.wear_corruptions, 0u);
  EXPECT_GT(r.resilience.detected_corruptions, 0u);
  EXPECT_EQ(r.resilience.wrong_accepted, 0u);  // checks still catch all
  expect_resilient_work_conserved(r);
}

TEST(ResilientServing, HealthTickStopsWhenBacklogIsStranded) {
  // Losing 9 banks (one past the spare pool) drops the chip below the
  // 32k class's 128-bank footprint: the stranded backlog is a terminal
  // state surfaced as `queued`. With the health monitor live, its tick
  // must detect no-progress and stop re-arming — this test returning at
  // all is the assertion (an unfixed tick loops forever).
  ServingConfig cfg;
  cfg.workload.mix = {{32768, 1.0}};
  cfg.workload.seed = 11;
  cfg.arrival_rate_per_s =
      2.0 * model::class_capacity_per_s(cfg.chip, 32768, 0, cfg.cycle_ns);
  cfg.duration_us = 1500.0;
  cfg.fail_bank_at_us = 1200.0;
  cfg.fail_banks = 9;
  cfg.resilience.wear_limit = 1u << 20;  // monitor on; wear never trips
  const auto r = ServingRuntime(cfg).run();
  EXPECT_EQ(r.bank_failures, 9u);
  EXPECT_GT(r.completed, 0u);  // pre-failure work still finished
  EXPECT_GT(r.queued, 0u);     // stranded backlog surfaced, not spun on
  expect_resilient_work_conserved(r);
}

// ------------------------------------------------- serving: chaos ----------

TEST(ResilientServing, ChaosRunIsDeterministic) {
  const auto a = ServingRuntime(chaos_config(21)).run();
  const auto b = ServingRuntime(chaos_config(21)).run();
  EXPECT_EQ(json_text(a), json_text(b));  // byte-identical reports
  const auto c = ServingRuntime(chaos_config(22)).run();
  EXPECT_NE(json_text(a), json_text(c));  // the seed actually matters
}

TEST(ResilientServing, ChaosDeliversNothingWrong) {
  const auto r = ServingRuntime(chaos_config(33)).run();
  EXPECT_GT(r.resilience.chaos_episodes, 0u);
  EXPECT_EQ(r.resilience.wrong_accepted, 0u);
  EXPECT_EQ(r.verify_failures, 0u);
  expect_resilient_work_conserved(r);
  // The mitigation stack keeps nearly everything completing.
  EXPECT_GE(static_cast<double>(r.completed),
            0.98 * static_cast<double>(r.admitted));
}

TEST(ResilientServing, DisablingDetectionAcceptsWrongResults) {
  // chaos_detect=false models a stack without the layered checks: the
  // same corrupting episodes now deliver wrong results, which is what
  // proves the detection path is doing real work everywhere else.
  auto cfg = chaos_config(33);
  cfg.resilience.chaos_detect = false;
  const auto r = ServingRuntime(cfg).run();
  EXPECT_GT(r.resilience.wrong_accepted, 0u);
  expect_resilient_work_conserved(r);
}

// ------------------------------------------------- serving: off == legacy --

TEST(ResilientServing, DefaultConfigKeepsLegacySchemaAndDeterminism) {
  ServingConfig cfg;
  cfg.workload.mix = {{256, 1.0}};
  cfg.workload.seed = 13;
  cfg.duration_us = 1500.0;
  ASSERT_FALSE(cfg.resilience.enabled());
  const auto a = ServingRuntime(cfg).run();
  const auto b = ServingRuntime(cfg).run();
  EXPECT_FALSE(a.resilience_enabled);
  EXPECT_EQ(json_text(a), json_text(b));
  // No resilience section leaks into the legacy report schema.
  EXPECT_EQ(json_text(a).find("\"resilience\""), std::string::npos);
}

}  // namespace
}  // namespace cryptopim::runtime
