// Tests for the analytic CPU-baseline model (src/baselines/cpu_model.*):
// a two-point affine fit over butterfly counts must predict the paper's
// six interior gem5 rows.
#include "baselines/cpu_model.h"

#include <gtest/gtest.h>

#include "model/paper_constants.h"
#include "ntt/params.h"

namespace cryptopim::baselines {
namespace {

TEST(CpuModel, OpCountScaling) {
  // n log n growth plus the linear scaling passes.
  EXPECT_DOUBLE_EQ(CpuModel::op_count(256), 3.0 * 128 * 8 + 4.0 * 256);
  EXPECT_DOUBLE_EQ(CpuModel::op_count(32768),
                   3.0 * 16384 * 15 + 4.0 * 32768);
  EXPECT_GT(CpuModel::op_count(512) / CpuModel::op_count(256), 2.0);
  EXPECT_LT(CpuModel::op_count(512) / CpuModel::op_count(256), 2.5);
}

TEST(CpuModel, CalibrationAnchorsReproduceExactly) {
  const auto m = CpuModel::paper_calibrated();
  const auto& rows = model::paper::cpu_rows();
  EXPECT_NEAR(m.predict(256).latency_us, rows.front().latency_us, 1e-6);
  EXPECT_NEAR(m.predict(32768).latency_us, rows.back().latency_us, 1e-6);
  EXPECT_NEAR(m.predict(256).energy_uj, rows.front().energy_uj, 1e-6);
  EXPECT_NEAR(m.predict(32768).energy_uj, rows.back().energy_uj, 1e-6);
}

TEST(CpuModel, InteriorRowsPredictedWithinFifteenPercent) {
  const auto m = CpuModel::paper_calibrated();
  for (const auto& row : model::paper::cpu_rows()) {
    const auto p = m.predict(row.n);
    EXPECT_NEAR(p.latency_us / row.latency_us, 1.0, 0.15) << "n=" << row.n;
    EXPECT_NEAR(p.energy_uj / row.energy_uj, 1.0, 0.15) << "n=" << row.n;
  }
}

TEST(CpuModel, CyclesPerButterflyIsPlausible) {
  // A modular butterfly (load, mulmod, add/sub, store) on a 2 GHz core:
  // tens of cycles, not thousands and not below a handful.
  const auto m = CpuModel::paper_calibrated();
  EXPECT_GT(m.cycles_per_op(), 5.0);
  EXPECT_LT(m.cycles_per_op(), 100.0);
}

TEST(CpuModel, ThroughputInverse) {
  const auto m = CpuModel::paper_calibrated();
  const auto p = m.predict(1024);
  EXPECT_NEAR(p.throughput_per_s * p.latency_us, 1e6, 1e-3);
}

}  // namespace
}  // namespace cryptopim::baselines
