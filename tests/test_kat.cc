// Known-answer regression tests: golden values pinned from a verified
// build. They guard the whole stack against silent cross-platform or
// refactoring drift — any change to root selection, twiddle layout,
// reduction constants, micro-op sequences or the deterministic RNG breaks
// these before it can skew an experiment.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "crypto/kem.h"
#include "ntt/ntt.h"
#include "ntt/params.h"
#include "ntt/poly.h"
#include "ntt/reduction.h"
#include "runtime/backend.h"
#include "sim/simulator.h"

namespace cryptopim {
namespace {

std::uint64_t fnv1a(const ntt::Poly& p) {
  std::uint64_t h = 1469598103934665603ull;
  for (const auto c : p) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

struct Golden {
  std::uint32_t n;
  std::uint32_t psi, omega;
  std::uint64_t forward_fnv, mul_fnv;
  std::uint32_t c0, c_last;
};

// Pinned from the verified build (seed 2020 uniform inputs).
constexpr Golden kGolden[] = {
    {256, 7146, 2028, 0x630030c0e039ec67ull, 0x890ec25de234b26bull, 6814,
     6743},
    {1024, 1945, 10302, 0x379cf8dad2bb1e04ull, 0xf6fa20a709416d71ull, 8052,
     7902},
    {4096, 406601, 427941, 0x751348d5865ab03eull, 0x27d109e39796ad67ull,
     168675, 461591},
};

TEST(Kat, RootSelectionIsStable) {
  // Deterministic generator search: the chosen roots must never change,
  // or every pre-computed table in a deployed system would be invalidated.
  for (const auto& g : kGolden) {
    const auto p = ntt::NttParams::for_degree(g.n);
    EXPECT_EQ(p.psi, g.psi) << "n=" << g.n;
    EXPECT_EQ(p.omega, g.omega) << "n=" << g.n;
  }
}

TEST(Kat, ForwardTransformChecksum) {
  for (const auto& g : kGolden) {
    const auto p = ntt::NttParams::for_degree(g.n);
    const ntt::GsNttEngine eng(p);
    Xoshiro256 rng(2020);
    auto a = ntt::sample_uniform(g.n, p.q, rng);
    (void)ntt::sample_uniform(g.n, p.q, rng);
    eng.forward(a);
    EXPECT_EQ(fnv1a(a), g.forward_fnv) << "n=" << g.n;
  }
}

TEST(Kat, MultiplicationChecksum) {
  for (const auto& g : kGolden) {
    const auto p = ntt::NttParams::for_degree(g.n);
    const ntt::GsNttEngine eng(p);
    Xoshiro256 rng(2020);
    const auto a = ntt::sample_uniform(g.n, p.q, rng);
    const auto b = ntt::sample_uniform(g.n, p.q, rng);
    const auto c = eng.negacyclic_multiply(a, b);
    EXPECT_EQ(fnv1a(c), g.mul_fnv) << "n=" << g.n;
    EXPECT_EQ(c[0], g.c0) << "n=" << g.n;
    EXPECT_EQ(c[g.n - 1], g.c_last) << "n=" << g.n;
  }
}

TEST(Kat, ReductionConstants) {
  // Algorithm-3 constants pinned (typo corrections included).
  EXPECT_EQ(ntt::MontgomeryShiftAdd::paper_spec(7681).q_prime(), 7679u);
  EXPECT_EQ(ntt::MontgomeryShiftAdd::paper_spec(12289).q_prime(), 12287u);
  EXPECT_EQ(ntt::MontgomeryShiftAdd::paper_spec(786433).q_prime(), 786431u);
  EXPECT_EQ(ntt::BarrettShiftAdd::paper_spec(12289).quotient_shift(), 16u);
  EXPECT_EQ(ntt::BarrettShiftAdd::paper_spec(786433).quotient_shift(), 20u);
}

TEST(Kat, SimulatorCycleAndMicroOpCounts) {
  // The accelerator's measured behaviour at n=256: cycles are a model
  // output quoted in EXPERIMENTS.md; micro-op and cell-event counts pin
  // the exact gate sequences (any micro-code change shows up here).
  const auto p = ntt::NttParams::for_degree(256);
  sim::CryptoPimSimulator simu(p);
  Xoshiro256 rng(2020);
  const auto a = ntt::sample_uniform(256, p.q, rng);
  const auto b = ntt::sample_uniform(256, p.q, rng);
  simu.multiply(a, b);
  EXPECT_EQ(simu.report().wall_cycles, 44321u);
  EXPECT_EQ(simu.report().totals.micro_ops, 32780u);
  EXPECT_EQ(simu.report().totals.cell_events, 9206784u);
}

TEST(Kat, KemRoundTripThroughWordBackend) {
  // Full KEM handshake with every ring multiplication on the word-level
  // execution backend, bit-exact against the pure-host reference: same
  // ciphertext, same shared key on both sides.
  const crypto::KemScheme host;
  crypto::Seed ks{}, es{};
  ks.fill(0x20);
  es.fill(0x06);
  const auto [hpk, hsk] = host.keygen(ks);
  const auto [hct, hkey] = host.encapsulate(hpk, es);

  crypto::KemScheme accel;
  const auto backend = runtime::make_backend("word");
  ASSERT_TRUE(backend && backend->functional());
  const crypto::PkeParams& pp = host.pke().params();
  const ntt::NttParams ring = ntt::NttParams::make(pp.n, pp.q);
  accel.pke().set_multiplier(
      [&backend, ring](const ntt::Poly& a, const ntt::Poly& b) {
        return backend->execute(ring, a, b).product;
      });
  const auto [pk, sk] = accel.keygen(ks);
  const auto [ct, key_enc] = accel.encapsulate(pk, es);
  const auto key_dec = accel.decapsulate(sk, ct);
  EXPECT_EQ(ct.u, hct.u);
  EXPECT_EQ(ct.v, hct.v);
  EXPECT_EQ(key_enc, hkey);
  EXPECT_EQ(key_dec, hkey);
  EXPECT_EQ(host.decapsulate(hsk, hct), hkey);
}

TEST(Kat, RngStream) {
  // The deterministic RNG every KAT depends on: reproducible streams,
  // seed-sensitive, and platform-independent (pure 64-bit ops).
  Xoshiro256 fresh(42);
  const auto v1 = fresh.next();
  const auto v2 = fresh.next();
  EXPECT_NE(v1, v2);
  Xoshiro256 again(42);
  EXPECT_EQ(again.next(), v1);
  EXPECT_EQ(again.next(), v2);
  Xoshiro256 other(43);
  EXPECT_NE(other.next(), v1);
}

}  // namespace
}  // namespace cryptopim
