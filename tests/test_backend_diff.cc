// Cross-backend differential harness: the proof that the host-speed
// word-level tier can stand in for the gate-level crossbar simulator.
//
// Every case materialises one (n, q, a, b) instance and executes it on
// all three `runtime::ExecutionBackend` tiers, asserting
//  * bit-exact coefficient equality: word == gate (and both == the
//    schoolbook-backed GsNttEngine oracle),
//  * cycle-model agreement: the word tier's attached accounting is
//    exactly the analytic tier's (same source, same numbers),
//  * the gate tier's pinned cycle counts survive the backend refactor.
//
// The randomized sweep covers every supported (n, q) pair (paper
// parameterisations plus small custom-modulus sets), adversarial corner
// inputs (all-zero, all q-1, impulses, alternating extremes, 2q-1
// pre-normalize in the word engine's partial domain) and fault-injected
// gate-level execution — over 1,000 differential cases under one pinned
// seed.
#include <cstdint>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ntt/ntt.h"
#include "ntt/params.h"
#include "ntt/poly.h"
#include "ntt/word_ntt.h"
#include "runtime/backend.h"
#include "runtime/serving.h"

namespace cp = cryptopim;
using cp::Xoshiro256;
using cp::ntt::NttParams;
using cp::ntt::Poly;
using cp::runtime::BackendResult;

namespace {

constexpr std::uint64_t kDiffSeed = 20260809;  // pinned: the whole sweep

/// Every (n, q) pair the differential sweep executes on the gate tier:
/// the three paper moduli (the shift-add reduction circuits are
/// modulus-specific) crossed with degrees from the boundary n = 4 up
/// through the 16-bit paper points. Small degrees keep the crossbar
/// simulation cheap enough for a thousand-case sweep; the paper design
/// points anchor the real parameterisations.
const std::vector<std::pair<std::uint32_t, std::uint32_t>>& gate_pairs() {
  static const std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs = {
      {4, 7681},    {8, 7681},    {16, 7681},    {32, 7681},
      {64, 7681},   {128, 7681},  {256, 7681},   {16, 12289},
      {64, 12289},  {256, 12289}, {512, 12289},  {1024, 12289},
      {16, 786433}, {64, 786433},  // the 32-bit datapath
  };
  return pairs;
}

/// Adversarial corner operands for one parameter set: extremes of the
/// canonical domain and degree-boundary impulses.
std::vector<Poly> corner_inputs(const NttParams& p) {
  const std::uint32_t n = p.n;
  const std::uint32_t top = p.q - 1;
  std::vector<Poly> ins;
  ins.push_back(Poly(n, 0));                       // all zero
  ins.push_back(Poly(n, top));                     // all q-1
  Poly delta0(n, 0);
  delta0[0] = 1;
  ins.push_back(delta0);                           // x^0 impulse
  Poly deltaTop(n, 0);
  deltaTop[n - 1] = top;
  ins.push_back(deltaTop);                         // (q-1) x^{n-1}
  Poly alt(n, 0);
  for (std::uint32_t i = 0; i < n; ++i) alt[i] = (i % 2) ? top : 0;
  ins.push_back(alt);                              // alternating extremes
  return ins;
}

class BackendDiff : public ::testing::Test {
 protected:
  /// Executes one case on all three tiers and checks the differential
  /// invariants. Returns how many gate-vs-word comparisons it counted.
  void check_case(const NttParams& params, const Poly& a, const Poly& b) {
    const BackendResult gate = gate_.execute(params, a, b);
    const BackendResult word = word_.execute(params, a, b);
    const BackendResult analytic = analytic_.execute(params, a, b);

    // Bit-exact functional equality vs the golden tier.
    ASSERT_EQ(word.product, gate.product)
        << "word/gate divergence at n=" << params.n << " q=" << params.q;
    // ... and vs the software oracle, closing the triangle.
    const cp::ntt::GsNttEngine oracle(params);
    ASSERT_EQ(word.product, oracle.negacyclic_multiply(a, b));

    // The word tier's accounting is the analytic tier's, exactly.
    EXPECT_EQ(word.sim_cycles, analytic.sim_cycles);
    EXPECT_EQ(word.latency_us, analytic.latency_us);
    EXPECT_EQ(word.energy_uj, analytic.energy_uj);
    EXPECT_TRUE(analytic.product.empty());
    EXPECT_GT(word.sim_cycles, 0u);
    ++cases_;
  }

  cp::runtime::GateLevelBackend gate_;
  cp::runtime::WordLevelBackend word_;
  cp::runtime::AnalyticBackend analytic_;
  std::size_t cases_ = 0;
};

TEST_F(BackendDiff, RandomizedSweepIsBitExactAcrossAllSupportedPairs) {
  Xoshiro256 rng(kDiffSeed);
  for (const auto& [n, q] : gate_pairs()) {
    const NttParams params = NttParams::make(n, q);
    // Weight the sweep toward the cheap small-degree sets so the total
    // crosses 1,000 gate executions in seconds, while every pair —
    // including the 512/1024 paper points — gets randomized coverage.
    const std::size_t reps = q == 786433 ? 20 : n <= 128 ? 130 : n <= 256 ? 30 : 4;
    for (std::size_t r = 0; r < reps; ++r) {
      const Poly a = cp::ntt::sample_uniform(n, q, rng);
      const Poly b = cp::ntt::sample_uniform(n, q, rng);
      check_case(params, a, b);
    }
  }
  // The acceptance bar: >= 1,000 randomized differential cases.
  EXPECT_GE(cases_, 1000u);
}

TEST_F(BackendDiff, AdversarialCornersMatchOnEveryPair) {
  Xoshiro256 rng(kDiffSeed ^ 0xC0);
  for (const auto& [n, q] : gate_pairs()) {
    const NttParams params = NttParams::make(n, q);
    const auto corners = corner_inputs(params);
    for (const Poly& a : corners) {
      // Corner x corner and corner x random.
      check_case(params, a, corners[(&a - corners.data() + 1) % corners.size()]);
      check_case(params, a, cp::ntt::sample_uniform(n, q, rng));
    }
  }
  EXPECT_GE(cases_, 2 * 5 * gate_pairs().size());
}

TEST_F(BackendDiff, FaultInjectedGateExecutionStillMatchesWord) {
  // The golden tier with the reliability stack on: faults planted,
  // write-verify, Freivalds, retry. Recovery must reproduce the exact
  // same coefficients the fault-free word tier computes.
  cp::reliability::ReliabilityConfig rc;
  rc.fault.stuck_rate = 1e-5;
  rc.fault.seed = 42;
  gate_.set_fault_injection(rc);

  Xoshiro256 rng(kDiffSeed ^ 0xFA);
  for (const std::uint32_t n : {64u, 256u}) {
    const NttParams params = NttParams::for_degree(n);
    for (int r = 0; r < 8; ++r) {
      const Poly a = cp::ntt::sample_uniform(n, params.q, rng);
      const Poly b = cp::ntt::sample_uniform(n, params.q, rng);
      const BackendResult gate = gate_.execute(params, a, b);
      const BackendResult word = word_.execute(params, a, b);
      ASSERT_EQ(word.product, gate.product) << "faulty gate diverged, n=" << n;
    }
  }
}

TEST_F(BackendDiff, PinnedGateCycleCountsSurviveTheRefactor) {
  // The same wall-cycle figures test_kat/test_reliability pin on the
  // raw simulator, now observed through the backend interface: the
  // refactor wraps, it must not change.
  const std::vector<std::pair<std::uint32_t, std::uint64_t>> pinned = {
      {256, 44321}, {512, 54716}, {1024, 60096}};
  Xoshiro256 rng(kDiffSeed ^ 0xCC);
  for (const auto& [n, cycles] : pinned) {
    const NttParams params = NttParams::for_degree(n);
    const Poly a = cp::ntt::sample_uniform(n, params.q, rng);
    const Poly b = cp::ntt::sample_uniform(n, params.q, rng);
    const BackendResult gate = gate_.execute(params, a, b);
    EXPECT_EQ(gate.sim_cycles, cycles) << "n=" << n;
  }
}

TEST_F(BackendDiff, WordMatchesOracleAtEveryPaperDegree) {
  // The large paper degrees are impractical on the gate tier inside a
  // unit test; the word tier must still match the software oracle (which
  // the gate tier is itself validated against in test_sim/test_kat).
  Xoshiro256 rng(kDiffSeed ^ 0xB1);
  for (const std::uint32_t n : cp::ntt::paper_degrees()) {
    const NttParams params = NttParams::for_degree(n);
    const cp::ntt::GsNttEngine oracle(params);
    const Poly a = cp::ntt::sample_uniform(n, params.q, rng);
    const Poly b = cp::ntt::sample_uniform(n, params.q, rng);
    const BackendResult word = word_.execute(params, a, b);
    ASSERT_EQ(word.product, oracle.negacyclic_multiply(a, b)) << "n=" << n;
    const BackendResult analytic = analytic_.execute(params, a, b);
    EXPECT_EQ(word.sim_cycles, analytic.sim_cycles) << "n=" << n;
    EXPECT_EQ(word.energy_uj, analytic.energy_uj) << "n=" << n;
  }
}

TEST_F(BackendDiff, BatchExecutionMatchesSingleExecution) {
  // The gate tier streams batches through the pipelined simulator;
  // products must be identical to one-at-a-time execution on both
  // functional tiers.
  Xoshiro256 rng(kDiffSeed ^ 0xBA);
  const NttParams params = NttParams::make(64, 7681);
  std::vector<std::pair<Poly, Poly>> pairs;
  for (int i = 0; i < 4; ++i) {
    pairs.emplace_back(cp::ntt::sample_uniform(64, 7681, rng),
                       cp::ntt::sample_uniform(64, 7681, rng));
  }
  const auto gate_batch = gate_.execute_batch(params, pairs);
  const auto word_batch = word_.execute_batch(params, pairs);
  ASSERT_EQ(gate_batch.size(), pairs.size());
  ASSERT_EQ(word_batch.size(), pairs.size());
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(gate_batch[i].product, word_batch[i].product) << "job " << i;
    EXPECT_EQ(word_batch[i].product,
              word_.execute(params, pairs[i].first, pairs[i].second).product);
  }
}

TEST(BackendFactory, NamesRoundTripAndUnknownIsRejected) {
  for (const auto& name : cp::runtime::backend_names()) {
    auto b = cp::runtime::make_backend(name);
    ASSERT_NE(b, nullptr) << name;
    EXPECT_EQ(b->name(), name);
  }
  EXPECT_EQ(cp::runtime::make_backend("quantum"), nullptr);
  EXPECT_EQ(cp::runtime::make_backend(""), nullptr);
}

TEST(BackendDiffWordDomain, PartialDomainInputsCanonicalizeIdentically) {
  // The word engine accepts the redundant [0, 2q) representation: a
  // coefficient of x and of x + q (e.g. 2q-1 vs q-1 pre-normalize) must
  // produce the same canonical product.
  const NttParams params = NttParams::make(128, 7681);
  cp::ntt::WordNttEngine eng(params);
  Xoshiro256 rng(kDiffSeed ^ 0x2F);
  for (int r = 0; r < 50; ++r) {
    Poly canon = cp::ntt::sample_uniform(128, 7681, rng);
    Poly partial = canon;
    for (auto& x : partial) {
      if (rng.next() % 2) x += params.q;  // lift into [q, 2q)
    }
    partial[0] = 2 * params.q - 1;  // force the 2q-1 extreme
    canon[0] = params.q - 1;
    const Poly b = cp::ntt::sample_uniform(128, 7681, rng);
    EXPECT_EQ(eng.negacyclic_multiply(partial, b),
              eng.negacyclic_multiply(canon, b));
  }
}

// -- serving invariants under every backend -----------------------------------

cp::runtime::ServingConfig small_serving(const std::string& backend) {
  cp::runtime::ServingConfig cfg;
  cfg.backend = backend;
  cfg.arrival_rate_per_s = 20000.0;
  cfg.duration_us = 300.0;
  cfg.workload.mix = {{256, 1.0}};
  cfg.workload.tenants = 3;
  cfg.workload.seed = 11;
  cfg.workload.verify_every = 4;
  return cfg;
}

TEST(BackendServing, InvariantsHoldUnderEveryBackend) {
  for (const auto& backend : cp::runtime::backend_names()) {
    cp::runtime::ServingRuntime rt(small_serving(backend));
    const auto rep = rt.run();
    SCOPED_TRACE(backend);

    // serving/2 schema with backend provenance.
    const auto j = rep.to_json();
    EXPECT_EQ(j.at("schema").as_string(), "serving/2");
    EXPECT_EQ(j.at("backend").as_string(), backend);

    // Work conservation after drain.
    EXPECT_EQ(rep.submitted,
              rep.admitted + rep.rejected + rep.rejected_unservable);
    EXPECT_EQ(rep.admitted, rep.completed + rep.queued);
    EXPECT_EQ(rep.in_flight, 0u);

    // Sigma tenant == global, field by field.
    std::uint64_t t_sub = 0, t_adm = 0, t_comp = 0;
    for (const auto& [id, ts] : rep.tenants) {
      t_sub += ts.submitted;
      t_adm += ts.admitted;
      t_comp += ts.completed;
    }
    EXPECT_EQ(t_sub, rep.submitted);
    EXPECT_EQ(t_adm, rep.admitted);
    EXPECT_EQ(t_comp, rep.completed);

    // Functional tiers verify; the analytic tier has nothing to check.
    EXPECT_EQ(rep.verify_failures, 0u);
    if (backend == "analytic") {
      EXPECT_EQ(rep.verified, 0u);
    } else {
      EXPECT_GT(rep.verified, 0u);
    }
  }
}

}  // namespace
