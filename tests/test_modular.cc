// Unit tests for generic modular arithmetic (src/ntt/modular.*).
#include "ntt/modular.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace cryptopim::ntt {
namespace {

TEST(Modular, AddSubRoundTrip) {
  const std::uint32_t q = 12289;
  Xoshiro256 rng(1);
  for (int i = 0; i < 1000; ++i) {
    const auto a = static_cast<std::uint32_t>(rng.next_below(q));
    const auto b = static_cast<std::uint32_t>(rng.next_below(q));
    EXPECT_EQ(sub_mod(add_mod(a, b, q), b, q), a);
    EXPECT_EQ(add_mod(sub_mod(a, b, q), b, q), a);
  }
}

TEST(Modular, AddModBoundary) {
  EXPECT_EQ(add_mod(7680, 1, 7681), 0u);
  EXPECT_EQ(add_mod(7680, 7680, 7681), 7679u);
  EXPECT_EQ(sub_mod(0, 1, 7681), 7680u);
  EXPECT_EQ(sub_mod(0, 0, 7681), 0u);
}

TEST(Modular, MulModMatchesWideArithmetic) {
  Xoshiro256 rng(2);
  for (std::uint32_t q : {7681u, 12289u, 786433u, 2147483647u}) {
    for (int i = 0; i < 500; ++i) {
      const auto a = static_cast<std::uint32_t>(rng.next_below(q));
      const auto b = static_cast<std::uint32_t>(rng.next_below(q));
      const auto expected = static_cast<std::uint32_t>(
          (static_cast<unsigned __int128>(a) * b) % q);
      EXPECT_EQ(mul_mod(a, b, q), expected);
    }
  }
}

TEST(Modular, PowMod) {
  EXPECT_EQ(pow_mod(2, 10, 1000000007), 1024u);
  EXPECT_EQ(pow_mod(3, 0, 7681), 1u);
  // Fermat: a^(q-1) = 1 for prime q.
  for (std::uint32_t q : {7681u, 12289u, 786433u}) {
    EXPECT_EQ(pow_mod(5, q - 1, q), 1u);
  }
}

TEST(Modular, InvMod) {
  Xoshiro256 rng(3);
  for (std::uint32_t q : {7681u, 12289u, 786433u}) {
    for (int i = 0; i < 200; ++i) {
      const auto a = static_cast<std::uint32_t>(rng.next_below(q - 1)) + 1;
      EXPECT_EQ(mul_mod(a, inv_mod(a, q), q), 1u);
    }
  }
}

TEST(Modular, InvModPow2) {
  // Montgomery q' derivation depends on exact inverses mod 2^k.
  for (std::uint32_t q : {7681u, 12289u, 786433u, 3u, 65535u}) {
    for (unsigned bits : {8u, 18u, 32u, 64u}) {
      const std::uint64_t inv = inv_mod_pow2(q, bits);
      const std::uint64_t mask =
          bits == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << bits) - 1;
      EXPECT_EQ((q * inv) & mask, 1u) << "q=" << q << " bits=" << bits;
    }
  }
}

TEST(Modular, PrimeFactors) {
  EXPECT_EQ(prime_factors(7680), (std::vector<std::uint32_t>{2, 3, 5}));
  EXPECT_EQ(prime_factors(12288), (std::vector<std::uint32_t>{2, 3}));
  EXPECT_EQ(prime_factors(786432), (std::vector<std::uint32_t>{2, 3}));
  EXPECT_EQ(prime_factors(1), (std::vector<std::uint32_t>{}));
  EXPECT_EQ(prime_factors(97), (std::vector<std::uint32_t>{97}));
}

TEST(Modular, IsPrime) {
  EXPECT_TRUE(is_prime(2));
  EXPECT_TRUE(is_prime(7681));
  EXPECT_TRUE(is_prime(12289));
  EXPECT_TRUE(is_prime(786433));
  EXPECT_FALSE(is_prime(1));
  EXPECT_FALSE(is_prime(7680));
  EXPECT_FALSE(is_prime(12288));
}

TEST(Modular, FindGeneratorHasFullOrder) {
  for (std::uint32_t q : {7681u, 12289u, 786433u, 17u}) {
    const std::uint32_t g = find_generator(q);
    // g^((q-1)/p) != 1 for every prime factor p of q-1.
    for (std::uint32_t p : prime_factors(q - 1)) {
      EXPECT_NE(pow_mod(g, (q - 1) / p, q), 1u);
    }
    EXPECT_EQ(pow_mod(g, q - 1, q), 1u);
  }
}

TEST(Modular, PrimitiveRootOfUnity) {
  // 2n-th roots needed by the paper's parameter sets must exist.
  struct Case {
    std::uint32_t k, q;
  };
  for (const auto& c : {Case{512, 7681}, Case{2048, 12289},
                        Case{65536, 786433}}) {
    const auto root = primitive_root_of_unity(c.k, c.q);
    ASSERT_TRUE(root.has_value());
    EXPECT_EQ(pow_mod(*root, c.k, c.q), 1u);
    EXPECT_NE(pow_mod(*root, c.k / 2, c.q), 1u);
  }
  // No 2n-th root when 2n does not divide q-1.
  EXPECT_FALSE(primitive_root_of_unity(1024, 7681).has_value());
}

}  // namespace
}  // namespace cryptopim::ntt
