// Tests for the online serving runtime (src/runtime/*): event queue
// ordering, scheduling policies, workload generators, and the
// acceptance-bar properties of full serving runs — determinism, work
// conservation, backpressure, saturation at the model-predicted bound,
// fairness, and mid-stream bank-failure recovery with verified results.
#include "runtime/serving.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "model/performance.h"
#include "model/scheduler.h"
#include "runtime/event_queue.h"
#include "runtime/policy.h"
#include "runtime/workload.h"

namespace cryptopim::runtime {
namespace {

// ----------------------------------------------------------- EventQueue --

TEST(EventQueue, PopsByCycleThenPushOrder) {
  EventQueue q;
  Event a;
  a.cycle = 5;
  a.kind = EventKind::kArrival;
  Event b;
  b.cycle = 3;
  b.kind = EventKind::kCompletion;
  Event c;
  c.cycle = 5;
  c.kind = EventKind::kQueueScan;
  q.push(a);
  q.push(b);
  q.push(c);
  ASSERT_EQ(q.size(), 3u);
  EXPECT_EQ(q.pop().kind, EventKind::kCompletion);  // cycle 3 first
  EXPECT_EQ(q.pop().kind, EventKind::kArrival);     // cycle 5, pushed first
  EXPECT_EQ(q.pop().kind, EventKind::kQueueScan);   // cycle 5, pushed second
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, TieBreakSurvivesSequenceCounterWrap) {
  // Same-cycle ordering is (cycle, seq) with seq assigned at push. Seed
  // the counter two below its wrap so pushes straddle it: the comparator
  // has no wrap awareness (none is needed — 1.8e19 pushes is
  // unreachable), so a wrapped seq of 0 pops *before* the pre-wrap
  // pushes of the same cycle. This pins that behaviour down so any
  // future "fix" is a deliberate, tested decision.
  EventQueue q(~std::uint64_t{0} - 1);
  Event a;  // seq = 2^64 - 2
  a.cycle = 7;
  a.dispatch_id = 1;
  Event b;  // seq = 2^64 - 1
  b.cycle = 7;
  b.dispatch_id = 2;
  Event c;  // seq wraps to 0
  c.cycle = 7;
  c.dispatch_id = 3;
  q.push(a);
  q.push(b);
  q.push(c);
  EXPECT_EQ(q.pop().dispatch_id, 3u);  // wrapped seq 0 sorts first
  EXPECT_EQ(q.pop().dispatch_id, 1u);
  EXPECT_EQ(q.pop().dispatch_id, 2u);
  // Away from the wrap, push order is pop order again.
  Event d;
  d.cycle = 7;
  d.dispatch_id = 4;
  Event e;
  e.cycle = 7;
  e.dispatch_id = 5;
  q.push(d);
  q.push(e);
  EXPECT_EQ(q.pop().dispatch_id, 4u);
  EXPECT_EQ(q.pop().dispatch_id, 5u);
}

TEST(EventQueue, InterleavedPushPopIsDeterministic) {
  // Two identically-seeded interleavings of pushes and pops must drain
  // in the same order — the determinism the serving runtime's replay
  // guarantee rests on. Collisions are forced by folding cycles mod 8.
  auto run_once = []() {
    std::vector<std::uint64_t> order;
    EventQueue q;
    Xoshiro256 rng(99);
    std::uint64_t id = 0;
    for (int round = 0; round < 200; ++round) {
      const unsigned pushes = 1 + static_cast<unsigned>(rng.next_below(3));
      for (unsigned i = 0; i < pushes; ++i) {
        Event e;
        e.cycle = rng.next_below(8);
        e.dispatch_id = id++;
        q.push(e);
      }
      if (!q.empty() && rng.next_below(2) == 0) {
        order.push_back(q.pop().dispatch_id);
      }
    }
    while (!q.empty()) order.push_back(q.pop().dispatch_id);
    return order;
  };
  const auto first = run_once();
  const auto second = run_once();
  EXPECT_EQ(first, second);
  // Every pushed event drained exactly once.
  std::vector<std::uint64_t> sorted = first;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) ==
              sorted.end());
}

// -------------------------------------------------------------- Policies --

Request make_request(std::uint64_t id, std::uint64_t arrival,
                     std::uint64_t service, std::uint64_t deadline = 0,
                     std::uint32_t tenant = 0) {
  Request r;
  r.id = id;
  r.tenant = tenant;
  r.degree = 256;
  r.arrival_cycle = arrival;
  r.service_cycles = service;
  r.deadline_cycle = deadline;
  return r;
}

TEST(Policy, FactoryKnowsAllNamesAndRejectsUnknown) {
  for (const auto& name : policy_names()) {
    const auto p = make_policy(name);
    ASSERT_NE(p, nullptr) << name;
    EXPECT_EQ(p->name(), name);
  }
  EXPECT_EQ(make_policy("lifo"), nullptr);
  EXPECT_EQ(make_policy(""), nullptr);
}

TEST(Policy, FifoPicksOldestEligible) {
  const auto p = make_policy("fifo");
  const std::vector<Request> queue = {make_request(3, 30, 1),
                                      make_request(1, 10, 9),
                                      make_request(2, 20, 5)};
  const PolicyContext ctx;
  EXPECT_EQ(p->pick(queue, {true, true, true}, ctx), 1u);
  // Masking the oldest moves the pick to the next-oldest.
  EXPECT_EQ(p->pick(queue, {true, false, true}, ctx), 2u);
  EXPECT_EQ(p->pick(queue, {false, false, false}, ctx), Policy::npos);
}

TEST(Policy, SjfPicksShortestService) {
  const auto p = make_policy("sjf");
  const std::vector<Request> queue = {make_request(1, 10, 900),
                                      make_request(2, 20, 100),
                                      make_request(3, 30, 100)};
  const PolicyContext ctx;
  // Equal service times tie-break on arrival order.
  EXPECT_EQ(p->pick(queue, {true, true, true}, ctx), 1u);
}

TEST(Policy, EdfPicksEarliestDeadlineAndRanksNoDeadlineLast) {
  const auto p = make_policy("edf");
  const std::vector<Request> queue = {
      make_request(1, 10, 5, /*deadline=*/0),    // no deadline
      make_request(2, 20, 5, /*deadline=*/500),
      make_request(3, 30, 5, /*deadline=*/400)};
  const PolicyContext ctx;
  EXPECT_EQ(p->pick(queue, {true, true, true}, ctx), 2u);
  // Only the deadline-free request eligible: it still gets served.
  EXPECT_EQ(p->pick(queue, {true, false, false}, ctx), 0u);
}

TEST(Policy, WfqPicksLeastNormalisedUsage) {
  const auto p = make_policy("wfq");
  const std::vector<Request> queue = {make_request(1, 10, 5, 0, /*tenant=*/0),
                                      make_request(2, 20, 5, 0, /*tenant=*/1)};
  const std::vector<double> usage = {100.0, 10.0};
  PolicyContext ctx;
  ctx.tenant_usage = usage;
  EXPECT_EQ(p->pick(queue, {true, true}, ctx), 1u);  // tenant 1 is behind
}

// ------------------------------------------------------------- Workloads --

TEST(Workload, UniformUnitStaysInHalfOpenInterval) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = uniform_unit(rng);
    EXPECT_GT(u, 0.0);
    EXPECT_LE(u, 1.0);
  }
}

TEST(Workload, PoissonStreamIsReproducibleAndBounded) {
  WorkloadSpec spec;
  spec.mix = {{256, 2.0}, {1024, 1.0}};
  spec.tenants = 3;
  spec.seed = 42;
  const std::uint64_t horizon = 100000;
  auto collect = [&] {
    OpenLoopPoisson gen(spec, /*rate_per_cycle=*/0.001, horizon);
    std::vector<Arrival> out = gen.initial();
    while (auto next = gen.next_after_arrival(out.back())) {
      out.push_back(*next);
    }
    return out;
  };
  const auto a = collect();
  const auto b = collect();
  ASSERT_GT(a.size(), 10u);
  ASSERT_EQ(a.size(), b.size());
  std::uint64_t prev = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].cycle, b[i].cycle);
    EXPECT_EQ(a[i].request.id, b[i].request.id);
    EXPECT_EQ(a[i].request.degree, b[i].request.degree);
    EXPECT_EQ(a[i].request.tenant, b[i].request.tenant);
    EXPECT_GT(a[i].cycle, prev);  // strictly advancing (>= 1 cycle gaps)
    EXPECT_LE(a[i].cycle, horizon);
    EXPECT_LT(a[i].request.tenant, spec.tenants);
    prev = a[i].cycle;
  }
}

TEST(Workload, ClosedLoopPrimesOneArrivalPerClient) {
  WorkloadSpec spec;
  spec.seed = 5;
  ClosedLoop gen(spec, /*clients=*/4, /*think_cycles=*/100,
                 /*horizon_cycles=*/100000);
  const auto initial = gen.initial();
  EXPECT_EQ(initial.size(), 4u);
  // A completion re-issues for the same client, after the horizon not.
  const auto again = gen.next_after_completion(initial[0].request, 500);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->request.client, initial[0].request.client);
  EXPECT_GT(again->cycle, 500u);
  EXPECT_FALSE(gen.next_after_completion(initial[0].request, 100001));
}

TEST(Workload, VerifyEveryMarksTheSampledSubset) {
  WorkloadSpec spec;
  spec.verify_every = 4;
  spec.seed = 7;
  Xoshiro256 rng(9);
  unsigned flagged = 0;
  for (std::uint64_t id = 0; id < 20; ++id) {
    const Request r = sample_request(spec, rng, id);
    if (r.verify) {
      ++flagged;
      EXPECT_NE(r.data_seed, 0u);
    }
  }
  EXPECT_EQ(flagged, 5u);  // ids 0, 4, 8, 12, 16
}

// ------------------------------------------------------------ Full runs --

/// Bank-limited service capacity for one degree class (model layer's
/// degraded-chip aware helper, on this config's chip and clock).
double class_capacity_per_s(const ServingConfig& cfg, std::uint32_t degree) {
  return model::class_capacity_per_s(cfg.chip, degree, /*failed_banks=*/0,
                                     cfg.cycle_ns);
}

ServingConfig base_config(std::uint32_t degree, double duration_us) {
  ServingConfig cfg;
  cfg.workload.mix = {{degree, 1.0}};
  cfg.workload.seed = 11;
  cfg.duration_us = duration_us;
  return cfg;
}

/// submitted == admitted + rejected and admitted == completed + queued
/// after the final drain (in_flight is always 0 then).
void expect_work_conserved(const ServingReport& r) {
  EXPECT_EQ(r.submitted, r.admitted + r.rejected + r.rejected_unservable);
  EXPECT_EQ(r.in_flight, 0u);
  EXPECT_EQ(r.admitted, r.completed + r.queued);
}

TEST(Serving, RejectsUnknownPolicyAndEmptyMix) {
  ServingConfig cfg = base_config(256, 10);
  cfg.policy = "round-robin";
  EXPECT_THROW(ServingRuntime(cfg).run(), std::invalid_argument);
  cfg.policy = "fifo";
  cfg.workload.mix.clear();
  EXPECT_THROW(ServingRuntime(cfg).run(), std::invalid_argument);
}

TEST(Serving, DeterministicReportForFixedSeed) {
  ServingConfig cfg;
  cfg.policy = "sjf";
  cfg.workload.mix = {{256, 2.0}, {1024, 1.0}, {4096, 0.5}};
  cfg.workload.tenants = 3;
  cfg.workload.seed = 99;
  cfg.arrival_rate_per_s = 200000;
  cfg.duration_us = 400;
  const auto a = ServingRuntime(cfg).run();
  const auto b = ServingRuntime(cfg).run();
  EXPECT_GT(a.completed, 0u);
  EXPECT_EQ(a.to_json().dump(), b.to_json().dump());
}

TEST(Serving, ConservesWorkUnderBackpressure) {
  ServingConfig cfg = base_config(4096, 0);
  const double capacity = class_capacity_per_s(cfg, 4096);
  // Offer 8x the bank-limited capacity into a 16-deep queue: most of the
  // stream must bounce, and every request must still be accounted for.
  cfg.arrival_rate_per_s = 8 * capacity;
  cfg.duration_us = 400 * 1e6 / capacity;  // ~400 served requests' worth
  cfg.queue_capacity = 16;
  const auto r = ServingRuntime(cfg).run();
  EXPECT_GT(r.rejected, 0u);
  EXPECT_GT(r.completed, 0u);
  EXPECT_EQ(r.queued, 0u);  // healthy chip: the queue fully drains
  expect_work_conserved(r);
  EXPECT_LE(r.queue_depth.max(), cfg.queue_capacity);
}

TEST(Serving, SaturationPlateausAtModelBound) {
  ServingConfig light = base_config(4096, 0);
  const double capacity = class_capacity_per_s(light, 4096);
  // ~6000 served requests: long enough that the trailing pipeline fill
  // (54 beats at n=4096) is a few percent of the run, not a third.
  const double horizon_us = 6000 * 1e6 / capacity;
  light.duration_us = horizon_us;
  light.arrival_rate_per_s = 0.2 * capacity;

  ServingConfig over2 = light;
  over2.arrival_rate_per_s = 2 * capacity;
  ServingConfig over4 = light;
  over4.arrival_rate_per_s = 4 * capacity;

  const auto rl = ServingRuntime(light).run();
  const auto r2 = ServingRuntime(over2).run();
  const auto r4 = ServingRuntime(over4).run();

  // Throughput plateaus at the bank-limited bound: pushing 2x -> 4x
  // offered load must not move delivered throughput, and both sit at the
  // model-predicted capacity (within fill/drain edge effects).
  EXPECT_GT(r2.throughput_per_s, 0.85 * capacity);
  EXPECT_LE(r2.throughput_per_s, 1.05 * capacity);
  EXPECT_NEAR(r4.throughput_per_s, r2.throughput_per_s,
              0.05 * capacity);
  // Light load is nowhere near the bound and its p99 is queueing-free;
  // overload p99 is dominated by time spent queued.
  EXPECT_LT(rl.throughput_per_s, 0.5 * capacity);
  EXPECT_GT(r2.latency_cycles.quantile(0.99),
            2 * rl.latency_cycles.quantile(0.99));
  EXPECT_GT(r2.utilization, 2 * rl.utilization);
  expect_work_conserved(rl);
  expect_work_conserved(r2);
  expect_work_conserved(r4);
}

TEST(Serving, MixedDegreesCarveOneLaneClassEach) {
  ServingConfig cfg;
  cfg.workload.mix = {{256, 1.0}, {1024, 1.0}, {4096, 1.0}};
  cfg.workload.seed = 21;
  cfg.arrival_rate_per_s = 100000;
  cfg.duration_us = 500;
  const auto r = ServingRuntime(cfg).run();
  EXPECT_GT(r.completed, 0u);
  EXPECT_EQ(r.rejected, 0u);  // light load: nothing bounces
  EXPECT_GE(r.repartitions, 3u);  // at least one carve per degree class
  expect_work_conserved(r);
}

TEST(Serving, EdfMeetsDeadlinesAtLightLoadMissesUnderOverload) {
  ServingConfig light = base_config(4096, 0);
  const double capacity = class_capacity_per_s(light, 4096);
  light.policy = "edf";
  // Slack 1.5x the unloaded service: queueing beyond half a service
  // time blows the deadline.
  light.deadline_slack = 1.5;
  light.duration_us = 1000 * 1e6 / capacity;
  light.arrival_rate_per_s = 0.2 * capacity;
  const auto rl = ServingRuntime(light).run();
  EXPECT_GT(rl.completed, 0u);
  EXPECT_EQ(rl.deadline_misses, 0u);

  ServingConfig over = light;
  over.arrival_rate_per_s = 3 * capacity;
  const auto ro = ServingRuntime(over).run();
  EXPECT_GT(ro.deadline_misses, 0u);
}

TEST(Serving, WfqWeightsProtectTheHeavyTenantsLatency) {
  // Two equal-demand tenants, weights 3:1, offered load past the bound.
  // After the full drain every admitted request completes, so cumulative
  // bank-cycle *totals* converge to the admission mix — the weight shows
  // up in *when* each tenant is served: wfq serves tenant 0 at three
  // times tenant 1's rate whenever both are queued, so tenant 0 waits
  // far less. fifo, blind to tenants, gives both the same latency.
  ServingConfig cfg = base_config(4096, 0);
  const double capacity = class_capacity_per_s(cfg, 4096);
  cfg.policy = "wfq";
  cfg.workload.tenants = 2;
  cfg.tenant_weights = {3.0, 1.0};
  cfg.arrival_rate_per_s = 2 * capacity;
  cfg.duration_us = 1000 * 1e6 / capacity;
  cfg.queue_capacity = 4096;  // nothing bounces: pure scheduling effect
  const auto wfq = ServingRuntime(cfg).run();

  ServingConfig blind = cfg;
  blind.policy = "fifo";
  const auto fifo = ServingRuntime(blind).run();

  const double wfq_t0 = wfq.tenants.at(0).latency_cycles.mean();
  const double wfq_t1 = wfq.tenants.at(1).latency_cycles.mean();
  const double fifo_t0 = fifo.tenants.at(0).latency_cycles.mean();
  const double fifo_t1 = fifo.tenants.at(1).latency_cycles.mean();
  ASSERT_GT(wfq_t1, 0.0);
  ASSERT_GT(fifo_t1, 0.0);
  EXPECT_LT(wfq_t0, 0.6 * wfq_t1);        // weight 3 waits much less
  EXPECT_LT(wfq_t0, 0.8 * fifo_t0);       // and less than under fifo
  EXPECT_NEAR(fifo_t0 / fifo_t1, 1.0, 0.2);  // fifo is tenant-blind
  expect_work_conserved(wfq);
}

TEST(Serving, ClosedLoopSelfLimitsAtClientCount) {
  ServingConfig cfg = base_config(256, 500);
  cfg.closed_loop_clients = 4;
  cfg.think_time_us = 5.0;
  const auto r = ServingRuntime(cfg).run();
  EXPECT_GT(r.completed, 4u);
  EXPECT_EQ(r.rejected, 0u);
  // At most one outstanding request per client, so the admission queue
  // can never hold more than clients - 1 others at an arrival.
  EXPECT_LT(r.queue_depth.max(), 4u);
  expect_work_conserved(r);
}

TEST(Serving, BankFailureRepartitionsAndStreamStillVerifies) {
  ServingConfig cfg = base_config(4096, 0);
  const double capacity = class_capacity_per_s(cfg, 4096);
  cfg.arrival_rate_per_s = 1.5 * capacity;
  cfg.duration_us = 400 * 1e6 / capacity;
  cfg.fail_bank_at_us = cfg.duration_us / 2;
  cfg.workload.verify_every = 64;
  const auto r = ServingRuntime(cfg).run();
  EXPECT_EQ(r.bank_failures, 1u);
  // The failure lands mid-saturation: the victim lane's in-flight work
  // retries and the remap is a repartition on top of the initial carve.
  EXPECT_GE(r.repartitions, 2u);
  EXPECT_GE(r.retried, 1u);
  EXPECT_EQ(r.queued, 0u);  // one failure is absorbed by spares: no starvation
  expect_work_conserved(r);
  // The sampled data-carrying requests all Freivalds-check.
  EXPECT_GT(r.verified, 0u);
  EXPECT_EQ(r.verify_failures, 0u);
}

TEST(Serving, FailuresBeyondSparesShrinkTheChip) {
  // n = 32768 needs all 128 banks for its single superbank; losing 9
  // banks (one past the spare pool) makes the class unservable, so
  // post-failure arrivals bounce and stranded queue entries surface as
  // `queued` instead of hanging the drain loop.
  // The single 32k lane fills in ~480us, so the failure must land well
  // after the first completions.
  ServingConfig cfg = base_config(32768, 1500);
  const double capacity = class_capacity_per_s(cfg, 32768);
  cfg.arrival_rate_per_s = 2 * capacity;
  cfg.fail_bank_at_us = 1200;
  cfg.fail_banks = 9;
  const auto r = ServingRuntime(cfg).run();
  EXPECT_EQ(r.bank_failures, 9u);
  EXPECT_GT(r.rejected_unservable, 0u);
  EXPECT_GT(r.completed, 0u);  // pre-failure work still finished
  EXPECT_GT(r.queued, 0u);     // stranded backlog is surfaced, not lost
  expect_work_conserved(r);
}

// -- backend matrix -----------------------------------------------------------
// The scheduler is backend-invariant: which execution tier runs the
// verified requests must not change admission, scheduling, simulated
// cycle accounting or verified counts. Same-seed reports across
// functional backends differ only in the report's `backend` provenance
// field (and host wall-clock, which the report never contains).

class ServingBackends : public ::testing::TestWithParam<const char*> {
 protected:
  /// Degree 256 keeps the gate tier's crossbar verifies affordable
  /// inside a unit test (a few ms each).
  ServingConfig backend_config(double duration_us) {
    ServingConfig cfg = base_config(256, duration_us);
    cfg.backend = GetParam();
    cfg.arrival_rate_per_s = 30000;
    cfg.workload.verify_every = 4;
    return cfg;
  }
};

TEST_P(ServingBackends, DeterministicReportForFixedSeed) {
  const ServingConfig cfg = backend_config(300);
  const auto a = ServingRuntime(cfg).run();
  const auto b = ServingRuntime(cfg).run();
  EXPECT_GT(a.completed, 0u);
  EXPECT_GT(a.verified, 0u);
  EXPECT_EQ(a.verify_failures, 0u);
  EXPECT_EQ(a.to_json().dump(), b.to_json().dump());
}

TEST_P(ServingBackends, ConservesWorkUnderBackpressure) {
  ServingConfig cfg = backend_config(0);
  const double capacity = class_capacity_per_s(cfg, 256);
  cfg.arrival_rate_per_s = 8 * capacity;
  cfg.duration_us = 100 * 1e6 / capacity;
  cfg.queue_capacity = 8;
  cfg.workload.verify_every = 16;
  const auto r = ServingRuntime(cfg).run();
  EXPECT_GT(r.rejected, 0u);
  EXPECT_GT(r.completed, 0u);
  expect_work_conserved(r);
}

TEST_P(ServingBackends, BankFailureRecoveryStillVerifies) {
  ServingConfig cfg = backend_config(0);
  const double capacity = class_capacity_per_s(cfg, 256);
  cfg.arrival_rate_per_s = 1.5 * capacity;
  cfg.duration_us = 200 * 1e6 / capacity;
  cfg.fail_bank_at_us = cfg.duration_us / 2;
  cfg.workload.verify_every = 32;
  const auto r = ServingRuntime(cfg).run();
  EXPECT_EQ(r.bank_failures, 1u);
  expect_work_conserved(r);
  EXPECT_GT(r.verified, 0u);
  EXPECT_EQ(r.verify_failures, 0u);
}

INSTANTIATE_TEST_SUITE_P(GateAndWord, ServingBackends,
                         ::testing::Values("gate", "word"));

TEST(ServingBackendEquivalence, SameSeedReportsDifferOnlyInBackendField) {
  // The pin behind the matrix: a gate-tier report and a word-tier report
  // of the same seeded run are byte-identical except for the `backend`
  // provenance string. (The analytic tier legitimately differs in the
  // verified counters — it has no functional results to verify.)
  ServingConfig cfg = base_config(256, 300);
  cfg.arrival_rate_per_s = 30000;
  cfg.workload.verify_every = 4;
  cfg.backend = "word";
  const auto word = ServingRuntime(cfg).run();
  cfg.backend = "gate";
  const auto gate = ServingRuntime(cfg).run();

  std::string gate_dump = gate.to_json().dump();
  const std::string from = "\"backend\":\"gate\"";
  const auto pos = gate_dump.find(from);
  ASSERT_NE(pos, std::string::npos);
  gate_dump.replace(pos, from.size(), "\"backend\":\"word\"");
  EXPECT_EQ(gate_dump, word.to_json().dump());
}

TEST(ServingBackendEquivalence, UnknownBackendIsRejected) {
  ServingConfig cfg = base_config(256, 10);
  cfg.backend = "quantum";
  EXPECT_THROW(ServingRuntime(cfg).run(), std::invalid_argument);
}

TEST(Serving, ReportJsonCarriesSchemaAndLatencyQuantiles) {
  ServingConfig cfg = base_config(256, 200);
  cfg.arrival_rate_per_s = 100000;
  const auto r = ServingRuntime(cfg).run();
  const auto j = r.to_json();
  EXPECT_EQ(j.at("schema").as_string(), "serving/2");
  EXPECT_EQ(j.at("policy").as_string(), "fifo");
  EXPECT_EQ(j.at("backend").as_string(), "word");  // the default tier
  const auto& lat = j.at("latency");
  EXPECT_GT(lat.at("p99_cycles").as_u64(), 0u);
  EXPECT_GE(lat.at("p99_cycles").as_u64(), lat.at("p50_cycles").as_u64());
  EXPECT_GT(r.latency_us(0.5), 0.0);
  // The windowed telemetry rides along in every report; SLO only when
  // objectives were configured (none here).
  EXPECT_TRUE(j.contains("series"));
  EXPECT_TRUE(j.contains("rolling"));
  EXPECT_EQ(j.at("series").at("schema").as_string(), "timeseries/1");
  EXPECT_FALSE(j.contains("slo"));
}

}  // namespace
}  // namespace cryptopim::runtime
