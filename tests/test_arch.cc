// Tests for pipeline construction and the configurable chip
// (src/arch/pipeline.*, src/arch/chip.*).
#include <gtest/gtest.h>

#include "arch/chip.h"
#include "arch/pipeline.h"
#include "ntt/params.h"

namespace cryptopim::arch {
namespace {

TEST(Pipeline, CryptoPimDepthMatchesTableII) {
  // 38 / 42 / 46 stages for 256 / 512 / 1024 (reverse-engineered from the
  // Table II latencies), and 4*log2(n)+6 in general.
  EXPECT_EQ(PipelineSpec::build(256, PipelineVariant::kCryptoPim).depth(),
            38u);
  EXPECT_EQ(PipelineSpec::build(512, PipelineVariant::kCryptoPim).depth(),
            42u);
  EXPECT_EQ(PipelineSpec::build(1024, PipelineVariant::kCryptoPim).depth(),
            46u);
  EXPECT_EQ(PipelineSpec::build(32768, PipelineVariant::kCryptoPim).depth(),
            66u);
}

TEST(Pipeline, VariantDepths) {
  // Per butterfly level: 1 stage (area-efficient), 5 (naive),
  // 2 (CryptoPIM); plus 3 scale/pointwise phases of 1/2/2 stages.
  const unsigned log2n = 8;  // n = 256
  EXPECT_EQ(PipelineSpec::build(256, PipelineVariant::kAreaEfficient).depth(),
            2 * log2n + 3);
  EXPECT_EQ(PipelineSpec::build(256, PipelineVariant::kNaive).depth(),
            10 * log2n + 6);
  EXPECT_EQ(PipelineSpec::build(256, PipelineVariant::kCryptoPim).depth(),
            4 * log2n + 6);
}

TEST(Pipeline, ParametersFollowDegree) {
  const auto p16 = PipelineSpec::build(1024, PipelineVariant::kCryptoPim);
  EXPECT_EQ(p16.bitwidth, 16u);
  EXPECT_EQ(p16.q, 12289u);
  const auto p32 = PipelineSpec::build(2048, PipelineVariant::kCryptoPim);
  EXPECT_EQ(p32.bitwidth, 32u);
  EXPECT_EQ(p32.q, 786433u);
}

TEST(Pipeline, EveryStageStartsWithATransfer) {
  for (const auto v : {PipelineVariant::kAreaEfficient,
                       PipelineVariant::kNaive, PipelineVariant::kCryptoPim}) {
    const auto spec = PipelineSpec::build(512, v);
    for (const auto& stage : spec.stages) {
      ASSERT_FALSE(stage.ops.empty());
      EXPECT_EQ(stage.ops.front(), StageOp::kTransferIn) << stage.name;
    }
  }
}

TEST(Pipeline, OpMultisetIsVariantIndependent) {
  // The three variants regroup the same work; total op counts must match.
  auto count = [](const PipelineSpec& s, StageOp op) {
    std::size_t c = 0;
    for (const auto& st : s.stages) {
      for (const auto o : st.ops) {
        if (o == op) ++c;
      }
    }
    return c;
  };
  const auto a = PipelineSpec::build(256, PipelineVariant::kAreaEfficient);
  const auto b = PipelineSpec::build(256, PipelineVariant::kNaive);
  const auto c = PipelineSpec::build(256, PipelineVariant::kCryptoPim);
  for (const auto op : {StageOp::kAdd, StageOp::kSub, StageOp::kMult,
                        StageOp::kBarrett, StageOp::kMontgomery}) {
    EXPECT_EQ(count(a, op), count(b, op));
    EXPECT_EQ(count(a, op), count(c, op));
  }
  // n=256: 8 fwd + 8 inv levels = 16 butterflies, + 3 coefficient
  // multiplies (psi, pointwise, psi-inv).
  EXPECT_EQ(count(c, StageOp::kMult), 19u);
  EXPECT_EQ(count(c, StageOp::kAdd), 16u);
  EXPECT_EQ(count(c, StageOp::kMontgomery), 19u);
}

TEST(Chip, PaperConfiguration) {
  const auto chip = ChipConfig::paper_chip();
  EXPECT_EQ(chip.blocks_per_bank, 49u);
  EXPECT_EQ(chip.total_banks, 128u);
  // "A 32k NTT pipeline has 49 blocks": 3*log2(32k) + 4.
  EXPECT_EQ(ChipConfig::bank_blocks_for_degree(32768), 49u);
}

TEST(Chip, PlanFor32k) {
  const auto plan = ChipConfig::paper_chip().plan_for_degree(32768);
  EXPECT_EQ(plan.banks_per_softbank, 64u);   // 64 banks per polynomial
  EXPECT_EQ(plan.banks_per_superbank, 128u); // 128 per multiplication
  EXPECT_EQ(plan.superbanks, 1u);
  EXPECT_EQ(plan.segments, 1u);
}

TEST(Chip, SmallDegreesPartitionIntoManySuperbanks) {
  const auto chip = ChipConfig::paper_chip();
  const auto p512 = chip.plan_for_degree(512);
  EXPECT_EQ(p512.banks_per_softbank, 1u);
  EXPECT_EQ(p512.superbanks, 64u);  // 64 parallel multiplications
  const auto p4k = chip.plan_for_degree(4096);
  EXPECT_EQ(p4k.banks_per_softbank, 8u);
  EXPECT_EQ(p4k.superbanks, 8u);
}

TEST(Chip, AboveDesignPointSegments) {
  const auto plan = ChipConfig::paper_chip().plan_for_degree(131072);
  EXPECT_EQ(plan.segments, 4u);  // 128k = 4 x 32k
  EXPECT_EQ(plan.superbanks, 1u);
}

TEST(Chip, InvalidDegreeThrows) {
  EXPECT_THROW(ChipConfig::paper_chip().plan_for_degree(1000),
               std::invalid_argument);
}

TEST(Chip, CapacityAccounting) {
  const auto chip = ChipConfig::paper_chip();
  EXPECT_EQ(chip.total_blocks(), 49ull * 128);
  EXPECT_EQ(chip.total_cells(), 49ull * 128 * 512 * 512);
}

}  // namespace
}  // namespace cryptopim::arch
