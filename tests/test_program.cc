// Tests for microcode programs and the controller (src/pim/program.*):
// record/replay equivalence — the property that makes broadcast-SIMD
// execution across banks sound — plus mask-slot semantics and controller
// bookkeeping.
#include "pim/program.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "pim/circuits/arith.h"
#include "pim/circuits/reduction.h"

namespace cryptopim::pim {
namespace {

std::vector<std::uint64_t> random_values(std::size_t n, unsigned bits,
                                         std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<std::uint64_t> v(n);
  for (auto& x : v) x = rng.next_bits(bits);
  return v;
}

TEST(Program, RecordsIssuedOps) {
  MemoryBlock blk;
  BlockExecutor exec(blk, RowMask::all());
  Program prog;
  {
    const ProgramRecorder rec(exec, prog, 0);
    const Operand a = exec.alloc(8);
    const Operand b = exec.alloc(8);
    (void)circuits::add(exec, a, b, 8);
  }
  // Recording stopped at scope exit.
  exec.set0(exec.alloc_col());
  EXPECT_EQ(prog.cycles(), circuits::add_cycles(8));
  EXPECT_FALSE(prog.empty());
  EXPECT_EQ(prog.rom_bits(), prog.size() * 36);
}

TEST(Program, ReplayIsBitExactOnAnotherBlock) {
  // Record a multiply + reduction on block 0, replay on block 1 with
  // different data in the same column layout.
  const std::uint32_t q = 12289;
  const auto spec = ntt::MontgomeryShiftAdd::paper_spec(q);

  MemoryBlock blk0, blk1;
  BlockExecutor e0(blk0, RowMask::all());
  BlockExecutor e1(blk1, RowMask::all());
  for (auto* e : {&e0, &e1}) e->reserve_region(8, 32);

  Program prog;
  Operand result_cols;  // columns the recorded program writes
  {
    const Operand a = e0.contiguous(8, 16);
    const Operand b = e0.contiguous(24, 16);
    e0.host_write(a, random_values(kBlockRows, 14, 1));
    e0.host_write(b, random_values(kBlockRows, 14, 2));
    const ProgramRecorder rec(e0, prog, 0);
    Operand prod = circuits::multiply(e0, a, b);
    Operand red = circuits::montgomery_reduce(e0, prod, spec, true);
    e0.free(prod);
    result_cols = red;  // keep columns alive; both blocks share the layout
  }

  const auto vals_a = random_values(kBlockRows, 14, 3);
  const auto vals_b = random_values(kBlockRows, 14, 4);
  e1.host_write(e1.contiguous(8, 16), vals_a);
  e1.host_write(e1.contiguous(24, 16), vals_b);
  const std::vector<RowMask> slots = {RowMask::all()};
  prog.execute(e1, slots);

  const auto out = e1.host_read(result_cols);
  for (std::size_t r = 0; r < kBlockRows; ++r) {
    ASSERT_EQ(out[r], spec.reduce_canonical(vals_a[r] * vals_b[r]))
        << "row " << r;
  }
}

TEST(Program, ReplayChargesSameCycles) {
  MemoryBlock blk0, blk1;
  BlockExecutor e0(blk0, RowMask::all());
  BlockExecutor e1(blk1, RowMask::all());
  Program prog;
  {
    const ProgramRecorder rec(e0, prog, 0);
    const Operand a = e0.alloc(16);
    const Operand b = e0.alloc(16);
    (void)circuits::multiply(e0, a, b);
  }
  const auto recorded_cycles = prog.cycles();
  e1.reset_stats();
  const std::vector<RowMask> slots = {RowMask::all()};
  prog.execute(e1, slots);
  EXPECT_EQ(e1.stats().cycles, recorded_cycles);
}

TEST(Program, MaskSlotsSelectRowsAtReplay) {
  MemoryBlock blk;
  BlockExecutor exec(blk, RowMask::first_rows(8));
  Program prog;
  const Col src = exec.alloc_col();
  const Col dst = exec.alloc_col();
  for (std::size_t r = 0; r < 8; ++r) blk.column(src).set(r, true);
  {
    ProgramRecorder rec(exec, prog, /*mask_slot=*/1);
    exec.set_mask(RowMask());  // recording run drives nothing
    exec.gate1(GateKind::kCopy, dst, src);
    rec.set_mask_slot(2);
    exec.gate1(GateKind::kNot, dst, src);
    exec.set_mask(RowMask::first_rows(8));
  }
  ASSERT_EQ(prog.size(), 2u);
  EXPECT_EQ(prog.instrs()[0].mask_slot, 1);
  EXPECT_EQ(prog.instrs()[1].mask_slot, 2);

  // Replay with slot 1 = rows 0..3, slot 2 = rows 4..7: copy hits the low
  // half, NOT the high half.
  RowMask low, high;
  for (std::size_t r = 0; r < 4; ++r) low.set(r, true);
  for (std::size_t r = 4; r < 8; ++r) high.set(r, true);
  const std::vector<RowMask> slots = {RowMask::first_rows(8), low, high};
  prog.execute(exec, slots);
  for (std::size_t r = 0; r < 4; ++r) EXPECT_TRUE(blk.column(dst).get(r));
  for (std::size_t r = 4; r < 8; ++r) EXPECT_FALSE(blk.column(dst).get(r));
}

TEST(Program, EmptyMaskExecutionChargesCyclesButTouchesNoCells) {
  // Lock-step banks execute phases whose mask is empty on their side.
  MemoryBlock blk;
  BlockExecutor exec(blk, RowMask());
  exec.reset_stats();
  const Col a = exec.alloc_col();
  const Col d = exec.alloc_col();
  exec.gate2(GateKind::kXor2, d, a, a);
  EXPECT_EQ(exec.stats().cycles, 2u);
  EXPECT_EQ(exec.stats().cell_events, 0u);  // no energy
}

TEST(Controller, StageLibraryBookkeeping) {
  Controller ctrl;
  Program p1, p2;
  p1.append(MicroOp{GateKind::kNot, 5, 4, 0, 0, false, false, false}, 0);
  p2.append(MicroOp{GateKind::kXor2, 6, 4, 5, 0, false, false, false}, 1);
  p2.append(MicroOp{GateKind::kSet0, 7, 0, 0, 0, false, false, false}, 0);
  const auto id1 = ctrl.add_stage("alpha", p1);
  const auto id2 = ctrl.add_stage("beta", p2);
  EXPECT_EQ(ctrl.stage_count(), 2u);
  EXPECT_EQ(ctrl.name(id1), "alpha");
  EXPECT_EQ(ctrl.program(id2).size(), 2u);
  EXPECT_EQ(ctrl.total_instructions(), 3u);
  EXPECT_EQ(ctrl.total_rom_bits(), 3u * 36);
}

TEST(Controller, BroadcastRunsEveryBank) {
  Controller ctrl;
  Program prog;
  MemoryBlock scratch;
  BlockExecutor se(scratch, RowMask::first_rows(4));
  const Col src = se.alloc_col();
  const Col dst = se.alloc_col();
  {
    const ProgramRecorder rec(se, prog, 0);
    se.gate1(GateKind::kNot, dst, src);
  }
  const auto id = ctrl.add_stage("not", std::move(prog));

  MemoryBlock b0, b1;
  BlockExecutor e0(b0, RowMask::first_rows(4));
  BlockExecutor e1(b1, RowMask::first_rows(4));
  // Same column ids exist in every block; allocate to mirror the layout.
  (void)e0.alloc_col();
  (void)e0.alloc_col();
  (void)e1.alloc_col();
  (void)e1.alloc_col();
  std::vector<BlockExecutor*> banks = {&e0, &e1};
  const std::vector<std::vector<RowMask>> tables = {
      {RowMask::first_rows(4)}, {RowMask::first_rows(2)}};
  ctrl.run_stage(id, banks, tables);
  EXPECT_TRUE(b0.column(dst).get(3));   // NOT 0 = 1 on all 4 rows
  EXPECT_TRUE(b1.column(dst).get(1));
  EXPECT_FALSE(b1.column(dst).get(3));  // outside bank 1's mask
}

}  // namespace
}  // namespace cryptopim::pim
