// Fleet serving: N chips behind one deterministic front-end
// (src/runtime/fleet.*), plus the chip-namespaced EventQueue ordering
// that makes the merged timeline a strict total order.
//
// The integration tests drive real FleetRuntime runs — routing,
// placement, cross-chip retry/hedging and the drain/re-shard machinery
// only count if they hold up with N live ServingRuntime chips under the
// merged clock. Routers also get direct unit tests.

#include "runtime/fleet.h"

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "obs/event_log.h"
#include "runtime/event_queue.h"

namespace cryptopim::runtime {
namespace {

FleetConfig small_fleet(std::uint32_t chips, std::uint64_t seed = 1) {
  FleetConfig fc;
  fc.chips = chips;
  fc.replicas = 2;
  fc.chip.workload.mix = {{256, 2.0}, {1024, 1.0}};
  fc.chip.workload.tenants = 4;
  fc.chip.workload.seed = seed;
  fc.chip.workload.verify_every = 16;
  fc.chip.arrival_rate_per_s = 200000.0;
  fc.chip.duration_us = 1500.0;
  return fc;
}

std::string json_text(const FleetReport& r) {
  std::ostringstream os;
  r.to_json().write(os);
  return os.str();
}

/// Final-fate conservation: every submitted request is counted exactly
/// once by its terminal category, and the per-chip serving ledgers tie
/// to the fleet's dispatch counters.
void expect_fleet_conserved(const FleetReport& r) {
  EXPECT_EQ(r.submitted, r.completed + r.rejected + r.shed + r.timed_out +
                             r.failed + r.queued);
  std::uint64_t chip_submitted = 0;
  for (const auto& c : r.chip_reports) chip_submitted += c.submitted;
  EXPECT_EQ(chip_submitted,
            r.routed + r.cross_retries + r.hedges_launched + r.redispatched);
}

std::uint64_t fleet_wrong_accepted(const FleetReport& r) {
  std::uint64_t wrong = 0;
  for (const auto& c : r.chip_reports) wrong += c.resilience.wrong_accepted;
  return wrong;
}

// ------------------------------------------------- EventQueue namespace --

TEST(EventQueueNamespace, SeqCarriesChipInHighBits) {
  EventQueue q0(0, /*chip=*/0);
  EventQueue q1(0, /*chip=*/1);
  EXPECT_EQ(q0.chip(), 0u);
  EXPECT_EQ(q1.chip(), 1u);
  Event a;
  a.cycle = 10;
  q0.push(a);
  q1.push(a);
  EXPECT_EQ(q0.peek().seq >> EventQueue::kChipShift, 0u);
  EXPECT_EQ(q1.peek().seq >> EventQueue::kChipShift, 1u);
  // Within the namespace the counter still starts at the seeded value.
  EXPECT_EQ(q0.peek().seq & ((std::uint64_t{1} << EventQueue::kChipShift) - 1),
            0u);
}

TEST(EventQueueNamespace, InterleavedTwoChipMergeIsAStrictTotalOrder) {
  // Two chips emit events at overlapping cycles; the merge (always pop
  // the globally earliest (cycle, seq)) must be deterministic, with
  // same-cycle ties broken by the chip namespace then push order.
  EventQueue chip0(0, 0);
  EventQueue chip1(0, 1);
  for (std::uint64_t cyc : {5u, 5u, 9u, 12u}) {
    Event e;
    e.cycle = cyc;
    e.dispatch_id = 100 + cyc;  // payload marker
    chip0.push(e);
  }
  for (std::uint64_t cyc : {5u, 7u, 9u}) {
    Event e;
    e.cycle = cyc;
    e.dispatch_id = 200 + cyc;
    chip1.push(e);
  }

  std::vector<std::pair<std::uint64_t, std::uint64_t>> order;  // cycle, seq
  std::set<std::uint64_t> seqs;
  while (!chip0.empty() || !chip1.empty()) {
    EventQueue* next = nullptr;
    if (chip0.empty()) next = &chip1;
    else if (chip1.empty()) next = &chip0;
    else {
      const auto& a = chip0.peek();
      const auto& b = chip1.peek();
      next = (a.cycle != b.cycle ? a.cycle < b.cycle : a.seq < b.seq)
                 ? &chip0
                 : &chip1;
    }
    const Event e = next->pop();
    EXPECT_TRUE(seqs.insert(e.seq).second) << "duplicate seq " << e.seq;
    order.emplace_back(e.cycle, e.seq);
  }
  ASSERT_EQ(order.size(), 7u);
  // Strict total order on (cycle, seq).
  for (std::size_t i = 1; i < order.size(); ++i) {
    EXPECT_TRUE(order[i - 1] < order[i]);
  }
  // Both chips pushed at cycle 5; chip 0's namespace sorts first, so the
  // merged prefix is chip0, chip0, chip1 — not push-arrival order.
  EXPECT_EQ(order[0].second >> EventQueue::kChipShift, 0u);
  EXPECT_EQ(order[1].second >> EventQueue::kChipShift, 0u);
  EXPECT_EQ(order[2].second >> EventQueue::kChipShift, 1u);
}

// ------------------------------------------------------------- Routers --

std::vector<ChipView> three_chips() {
  return {{0, /*queue=*/4, /*in_flight=*/2},
          {1, /*queue=*/0, /*in_flight=*/1},
          {2, /*queue=*/0, /*in_flight=*/1}};
}

TEST(RouterFactory, KnownNamesAndUnknownName) {
  for (const char* name : {"hash", "least", "affinity"}) {
    auto r = make_router(name);
    ASSERT_NE(r, nullptr) << name;
    EXPECT_STREQ(r->name(), name);
  }
  EXPECT_EQ(make_router("roundrobin"), nullptr);
}

TEST(HashRouter, StickyPerTenantAndAlwaysInCandidates) {
  auto r = make_router("hash");
  const auto cands = three_chips();
  for (std::uint32_t tenant = 0; tenant < 16; ++tenant) {
    Request req;
    req.tenant = tenant;
    const auto first = r->pick(req, cands);
    EXPECT_TRUE(first == 0 || first == 1 || first == 2);
    // Consistent: the same tenant lands on the same chip every time.
    for (int i = 0; i < 4; ++i) EXPECT_EQ(r->pick(req, cands), first);
  }
  // Not degenerate: 16 tenants over 3 chips should use more than one.
  std::set<std::uint32_t> used;
  for (std::uint32_t tenant = 0; tenant < 16; ++tenant) {
    Request req;
    req.tenant = tenant;
    used.insert(r->pick(req, cands));
  }
  EXPECT_GT(used.size(), 1u);
}

TEST(LeastLoadedRouter, PicksMinLoadLowestIdOnTies) {
  auto r = make_router("least");
  Request req;
  // Chips 1 and 2 tie at load 1; chip 1 wins by id.
  EXPECT_EQ(r->pick(req, three_chips()), 1u);
  std::vector<ChipView> cands = {{0, 0, 0}, {1, 5, 0}, {2, 1, 1}};
  EXPECT_EQ(r->pick(req, cands), 0u);
}

TEST(AffinityRouter, PicksThePlacementPrimary) {
  auto r = make_router("affinity");
  Request req;
  std::vector<ChipView> cands = {{2, 9, 9}, {0, 0, 0}};
  // The candidate list is the class placement in order; affinity takes
  // the primary regardless of load.
  EXPECT_EQ(r->pick(req, cands), 2u);
}

// ----------------------------------------------------- FleetRuntime runs --

TEST(FleetServing, HealthyFleetConservesAndSpreadsWork) {
  FleetRuntime fleet(small_fleet(4));
  const auto rep = fleet.run();
  EXPECT_GT(rep.submitted, 100u);
  EXPECT_GT(rep.completed, 0u);
  expect_fleet_conserved(rep);
  EXPECT_EQ(fleet_wrong_accepted(rep), 0u);
  EXPECT_EQ(rep.chip_reports.size(), 4u);
  std::uint64_t busy_chips = 0;
  for (std::size_t i = 0; i < rep.chip_reports.size(); ++i) {
    const auto& c = rep.chip_reports[i];
    EXPECT_TRUE(c.fleet_mode);
    EXPECT_EQ(c.chip_id, i);
    if (c.submitted > 0) ++busy_chips;
  }
  // replicas=2 over two degree classes must engage at least two chips.
  EXPECT_GE(busy_chips, 2u);
  EXPECT_EQ(rep.crashes, 0u);
  EXPECT_EQ(rep.reshards, 0u);
}

TEST(FleetServing, EveryRouterPolicyRunsConserved) {
  for (const char* router : {"hash", "least", "affinity"}) {
    auto fc = small_fleet(3);
    fc.router = router;
    FleetRuntime fleet(std::move(fc));
    const auto rep = fleet.run();
    EXPECT_EQ(rep.router, router);
    expect_fleet_conserved(rep);
    EXPECT_EQ(fleet_wrong_accepted(rep), 0u) << router;
  }
}

TEST(FleetServing, InvalidConfigsThrow) {
  auto fc = small_fleet(0);
  EXPECT_THROW(FleetRuntime(std::move(fc)).run(), std::invalid_argument);
  fc = small_fleet(2);
  fc.router = "bogus";
  EXPECT_THROW(FleetRuntime(std::move(fc)).run(), std::invalid_argument);
  fc = small_fleet(2);
  fc.chip.closed_loop_clients = 4;
  EXPECT_THROW(FleetRuntime(std::move(fc)).run(), std::invalid_argument);
}

TEST(FleetServing, SameSeedIsByteIdentical) {
  auto cfg = small_fleet(4, /*seed=*/9);
  cfg.chaos.enabled = true;
  cfg.chaos.seed = 9;
  cfg.hedge = true;
  const auto a = FleetRuntime(cfg).run();
  const auto b = FleetRuntime(cfg).run();
  EXPECT_EQ(json_text(a), json_text(b));
  const auto c = FleetRuntime(small_fleet(4, /*seed=*/10)).run();
  EXPECT_NE(json_text(a), json_text(c));
}

TEST(FleetServing, ChipKillMidBurstDrainsReshardsAndRecovers) {
  auto fc = small_fleet(4, /*seed=*/3);
  fc.chip.duration_us = 3000.0;
  fc.kill_chip_at_us = 700.0;
  fc.kill_chip = 1;
  FleetRuntime fleet(fc);
  const auto rep = fleet.run();

  EXPECT_EQ(rep.crashes, 1u);
  EXPECT_EQ(rep.rejoins, 1u);
  // The crash re-shards the map; the rejoin re-shards it back.
  EXPECT_GE(rep.reshards, 2u);
  const auto& victim = rep.chip_reports[fc.kill_chip];
  // The burst is hot enough that the victim had work to lose.
  EXPECT_GT(victim.migrated + victim.lost_in_flight, 0u);
  // Everything reclaimed from the victim was re-routed...
  EXPECT_GE(rep.redispatched, victim.migrated + victim.lost_in_flight);
  // ...and nothing corrupt slipped through anywhere.
  EXPECT_EQ(fleet_wrong_accepted(rep), 0u);
  // Migrated work completes or stays accounted: conservation holds with
  // the crash in the middle of the run.
  expect_fleet_conserved(rep);
  // The victim rejoined and served again after the scrub: it saw more
  // submissions than it lost.
  EXPECT_GT(victim.submitted, 0u);
}

TEST(FleetServing, KillingEveryChipParksArrivalsUntilRejoin) {
  // One chip, killed mid-run: arrivals during the outage have no live
  // candidate and park; the rejoin drains the park. Nothing is lost.
  auto fc = small_fleet(1, /*seed=*/5);
  fc.replicas = 1;
  fc.chip.duration_us = 3000.0;
  fc.chip.arrival_rate_per_s = 50000.0;
  fc.kill_chip_at_us = 600.0;
  fc.kill_chip = 0;
  fc.scrub_us = 400.0;
  FleetRuntime fleet(fc);
  const auto rep = fleet.run();
  EXPECT_EQ(rep.crashes, 1u);
  EXPECT_EQ(rep.rejoins, 1u);
  EXPECT_GT(rep.parked, 0u);
  expect_fleet_conserved(rep);
  EXPECT_EQ(fleet_wrong_accepted(rep), 0u);
  // The fleet kept serving after the rejoin.
  EXPECT_GT(rep.completed, 0u);
}

TEST(FleetServing, FleetChaosEpisodesAreSurvivedWithoutWrongResults) {
  auto fc = small_fleet(4, /*seed=*/11);
  fc.chip.duration_us = 6000.0;
  fc.chaos.enabled = true;
  fc.chaos.seed = 11;
  fc.chaos.mean_interval_us = 600.0;
  fc.chaos.mean_duration_us = 250.0;
  fc.max_retries = 3;
  fc.retry_budget_ratio = 1.0;
  fc.chip.resilience.max_retries = 2;  // lane-level retries for storms
  FleetRuntime fleet(fc);
  const auto rep = fleet.run();

  EXPECT_GT(rep.crashes + rep.brownouts + rep.corruption_storms, 0u);
  EXPECT_EQ(rep.rejoins, rep.crashes + rep.drains);
  expect_fleet_conserved(rep);
  EXPECT_EQ(fleet_wrong_accepted(rep), 0u);
  // The fleet stays useful through the storm: the overwhelming majority
  // of non-rejected requests still complete.
  const std::uint64_t resolved = rep.submitted - rep.rejected - rep.shed;
  EXPECT_GT(resolved, 0u);
  EXPECT_GE(static_cast<double>(rep.completed),
            0.95 * static_cast<double>(resolved));
  // Corruption storms were detected, not silently accepted.
  std::uint64_t chip_corruptions = 0;
  for (const auto& c : rep.chip_reports) chip_corruptions += c.chip_corruptions;
  if (rep.corruption_storms > 0) {
    EXPECT_GT(chip_corruptions, 0u);
  }
}

TEST(FleetServing, CrossChipRetryRescuesWorkAChipGaveUpOn) {
  // A corruption storm with lane retries off forces terminal chip
  // failures; the fleet's cross-chip retry layer re-routes them.
  auto fc = small_fleet(3, /*seed=*/21);
  fc.chip.duration_us = 4000.0;
  fc.chip.resilience.max_retries = 0;  // chips give up immediately
  fc.max_retries = 3;
  fc.retry_budget_ratio = 4.0;
  fc.chaos.enabled = true;
  fc.chaos.seed = 21;
  fc.chaos.mean_interval_us = 500.0;
  fc.chaos.mean_duration_us = 300.0;
  fc.chaos.crash_fraction = 0.0;  // storms + brownouts only
  fc.chaos.brownout_fraction = 0.0;
  FleetRuntime fleet(fc);
  const auto rep = fleet.run();
  EXPECT_GT(rep.corruption_storms, 0u);
  EXPECT_GT(rep.cross_retries, 0u);
  expect_fleet_conserved(rep);
  EXPECT_EQ(fleet_wrong_accepted(rep), 0u);
  // Retries rescued at least some of the storm's victims.
  EXPECT_LT(rep.failed, rep.cross_retries + rep.failed);
}

// -------------------------------------------------- shared event log --

TEST(FleetServing, SharedEventLogStampsChipOnEveryRecord) {
  auto fc = small_fleet(3, /*seed=*/13);
  fc.chip.duration_us = 2000.0;
  fc.kill_chip_at_us = 500.0;
  fc.kill_chip = 0;
  FleetRuntime fleet(fc);
  obs::EventLog log;
  log.set_enabled(true);
  fleet.set_event_log(&log);
  const auto rep = fleet.run();
  expect_fleet_conserved(rep);
  ASSERT_GT(log.size(), 0u);

  std::set<std::uint64_t> chips_seen;
  std::set<std::string> evs_seen;
  for (const auto& rec : log.records()) {
    // serve-events/2: every record carries ev, cycle and chip.
    ASSERT_TRUE(rec.contains("ev"));
    ASSERT_TRUE(rec.contains("cycle"));
    ASSERT_TRUE(rec.contains("chip")) << rec.at("ev").as_string();
    chips_seen.insert(rec.at("chip").as_u64());
    evs_seen.insert(rec.at("ev").as_string());
  }
  // More than one chip logged into the one stream, and the fleet's own
  // lifecycle records (route + crash machinery) interleave with the
  // chips' request records.
  EXPECT_GT(chips_seen.size(), 1u);
  EXPECT_TRUE(evs_seen.contains("route"));
  EXPECT_TRUE(evs_seen.contains("chip_crash"));
  EXPECT_TRUE(evs_seen.contains("chip_rejoin"));
  EXPECT_TRUE(evs_seen.contains("reshard"));
  EXPECT_TRUE(evs_seen.contains("admitted"));
}

TEST(FleetServing, TraceIdsAreStableAcrossChips) {
  // A request re-dispatched onto another chip keeps its trace id: the
  // causal chain for one request reads across chips in the shared log.
  auto fc = small_fleet(3, /*seed=*/17);
  fc.chip.duration_us = 3000.0;
  fc.chip.resilience.max_retries = 0;
  fc.max_retries = 3;
  fc.retry_budget_ratio = 4.0;
  fc.chaos.enabled = true;
  fc.chaos.seed = 17;
  fc.chaos.mean_interval_us = 500.0;
  fc.chaos.mean_duration_us = 300.0;
  fc.chaos.crash_fraction = 0.0;
  fc.chaos.brownout_fraction = 0.0;
  FleetRuntime fleet(fc);
  obs::EventLog log;
  log.set_enabled(true);
  fleet.set_event_log(&log);
  const auto rep = fleet.run();
  ASSERT_GT(rep.cross_retries, 0u);

  // Find a fleet_retry record and check its trace id was admitted on
  // more than one chip.
  bool found_cross_chip_trace = false;
  for (const auto& rec : log.records()) {
    if (rec.at("ev").as_string() != "fleet_retry") continue;
    const std::uint64_t trace = rec.at("trace").as_u64();
    std::set<std::uint64_t> chips;
    for (const auto& other : log.records()) {
      if (other.contains("trace") && other.at("trace").as_u64() == trace &&
          other.at("ev").as_string() == "admitted") {
        chips.insert(other.at("chip").as_u64());
      }
    }
    if (chips.size() > 1) {
      found_cross_chip_trace = true;
      break;
    }
  }
  EXPECT_TRUE(found_cross_chip_trace);
}

// ------------------------------------------------------------ report --

TEST(FleetReportJson, CarriesSchemaCountersAndPerChipReports) {
  auto fc = small_fleet(2, /*seed=*/19);
  FleetRuntime fleet(fc);
  const auto rep = fleet.run();
  const auto j = rep.to_json();
  EXPECT_EQ(j.at("schema").as_string(), "fleet/1");
  EXPECT_EQ(j.at("fleet").as_u64(), 2u);
  EXPECT_EQ(j.at("router").as_string(), "hash");
  EXPECT_EQ(j.at("replicas").as_u64(), 2u);
  ASSERT_EQ(j.at("chips").size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    const auto& c = j.at("chips")[i];
    EXPECT_EQ(c.at("schema").as_string(), "serving/2");
    EXPECT_EQ(c.at("chip").as_u64(), i);
  }
  EXPECT_EQ(j.at("submitted").as_u64(), rep.submitted);
  EXPECT_EQ(j.at("completed").as_u64(), rep.completed);
}

}  // namespace
}  // namespace cryptopim::runtime
