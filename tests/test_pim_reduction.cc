// Tests for the in-memory modular reduction circuits
// (src/pim/circuits/reduction.*): functional equivalence with the scalar
// shift-add reductions over random row-parallel inputs, and cycle counts
// in the neighbourhood of the paper's Table I.
#include "pim/circuits/reduction.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ntt/modular.h"

namespace cryptopim::pim::circuits {
namespace {

constexpr std::uint32_t kPaperModuli[] = {7681, 12289, 786433};

struct Fixture {
  MemoryBlock blk;
  BlockExecutor exec;
  explicit Fixture() : exec(blk, RowMask::all()) { exec.reset_stats(); }
};

std::vector<std::uint64_t> random_below(std::size_t n, std::uint64_t bound,
                                        std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<std::uint64_t> v(n);
  for (auto& x : v) x = rng.next_below(bound);
  return v;
}

class BarrettCircuit : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(BarrettCircuit, LazyMatchesScalarAfterAddition) {
  const std::uint32_t q = GetParam();
  const auto spec = ntt::BarrettShiftAdd::paper_spec(q);
  Fixture f;
  // Post-addition domain: a < 2q.
  const auto va = random_below(kBlockRows, 2ull * q, q);
  const unsigned w = bit_length(2ull * q - 1);
  Operand a = f.exec.alloc(w);
  f.exec.host_write(a, va);

  Operand r = barrett_reduce(f.exec, a, spec, /*canonical=*/false);
  const auto out = f.exec.host_read(r);
  for (std::size_t i = 0; i < kBlockRows; ++i) {
    ASSERT_EQ(out[i], spec.reduce(va[i])) << "row " << i;
    ASSERT_LT(out[i], 2ull * q);
  }
}

TEST_P(BarrettCircuit, CanonicalMatchesModQ) {
  const std::uint32_t q = GetParam();
  const auto spec = ntt::BarrettShiftAdd::paper_spec(q);
  Fixture f;
  const auto va = random_below(kBlockRows, 2ull * q, q + 1);
  const unsigned w = bit_length(2ull * q - 1);
  Operand a = f.exec.alloc(w);
  f.exec.host_write(a, va);

  Operand r = barrett_reduce(f.exec, a, spec, /*canonical=*/true);
  const auto out = f.exec.host_read(r);
  for (std::size_t i = 0; i < kBlockRows; ++i) {
    ASSERT_EQ(out[i], va[i] % q) << "row " << i;
  }
}

TEST_P(BarrettCircuit, NoColumnLeaks) {
  const std::uint32_t q = GetParam();
  const auto spec = ntt::BarrettShiftAdd::paper_spec(q);
  Fixture f;
  const unsigned w = bit_length(2ull * q - 1);
  Operand a = f.exec.alloc(w);
  const std::size_t before = f.exec.free_count();
  Operand r = barrett_reduce(f.exec, a, spec, true);
  f.exec.free(r);
  EXPECT_EQ(f.exec.free_count(), before);
}

INSTANTIATE_TEST_SUITE_P(PaperModuli, BarrettCircuit,
                         ::testing::ValuesIn(kPaperModuli));

class MontgomeryCircuit : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(MontgomeryCircuit, LazyMatchesScalarAfterMultiplication) {
  const std::uint32_t q = GetParam();
  const auto spec = ntt::MontgomeryShiftAdd::paper_spec(q);
  Fixture f;
  // Post-multiplication domain: products of values < 2q (lazy butterfly).
  Xoshiro256 rng(q + 3);
  std::vector<std::uint64_t> va(kBlockRows);
  for (auto& x : va) x = rng.next_below(2ull * q) * rng.next_below(q);
  const unsigned w = bit_length(2ull * q - 1) + bit_length(q - 1);
  Operand a = f.exec.alloc(w);
  f.exec.host_write(a, va);

  Operand r = montgomery_reduce(f.exec, a, spec, /*canonical=*/false);
  const auto out = f.exec.host_read(r);
  for (std::size_t i = 0; i < kBlockRows; ++i) {
    ASSERT_EQ(out[i], spec.reduce(va[i])) << "row " << i;
  }
}

TEST_P(MontgomeryCircuit, CanonicalIsTimesRInverse) {
  const std::uint32_t q = GetParam();
  const auto spec = ntt::MontgomeryShiftAdd::paper_spec(q);
  Fixture f;
  Xoshiro256 rng(q + 7);
  std::vector<std::uint64_t> va(kBlockRows);
  for (auto& x : va) x = rng.next_below(q) * rng.next_below(q);
  const unsigned w = 2 * bit_length(q - 1);
  Operand a = f.exec.alloc(w);
  f.exec.host_write(a, va);

  Operand r = montgomery_reduce(f.exec, a, spec, /*canonical=*/true);
  const auto out = f.exec.host_read(r);
  const auto r_mod_q = static_cast<std::uint32_t>(spec.R() % q);
  for (std::size_t i = 0; i < kBlockRows; ++i) {
    // out * R ≡ a (mod q)
    ASSERT_EQ(ntt::mul_mod(static_cast<std::uint32_t>(out[i]), r_mod_q, q),
              va[i] % q)
        << "row " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(PaperModuli, MontgomeryCircuit,
                         ::testing::ValuesIn(kPaperModuli));

TEST(ReductionCycles, SameBallparkAsTableI) {
  // Table I (lazy reductions): Barrett 239 @12289, 429 @786433;
  // Montgomery 683 / 461 / 1083. Our reconstruction of the width-trimmed
  // micro-code is not the authors' exact schedule, so we assert the same
  // order of magnitude and the same orderings rather than equality; the
  // bench prints the side-by-side numbers.
  struct Entry {
    std::uint32_t q;
    std::uint64_t barrett, montgomery;
  };
  std::vector<Entry> measured;
  for (std::uint32_t q : kPaperModuli) {
    Entry e{q, 0, 0};
    {
      Fixture f;
      Operand a = f.exec.alloc(bit_length(2ull * q - 1));
      f.exec.reset_stats();
      Operand r = barrett_reduce(
          f.exec, a, ntt::BarrettShiftAdd::paper_spec(q), false);
      (void)r;
      e.barrett = f.exec.stats().cycles;
    }
    {
      Fixture f;
      const auto spec = ntt::MontgomeryShiftAdd::paper_spec(q);
      Operand a =
          f.exec.alloc(bit_length(2ull * q - 1) + bit_length(q - 1));
      f.exec.reset_stats();
      Operand r = montgomery_reduce(f.exec, a, spec, false);
      (void)r;
      e.montgomery = f.exec.stats().cycles;
    }
    measured.push_back(e);
  }
  // Barrett is always cheaper than Montgomery for the same q (narrower
  // inputs, shorter chain) — as in Table I.
  for (const auto& e : measured) {
    EXPECT_LT(e.barrett, e.montgomery) << "q=" << e.q;
  }
  // The 32-bit modulus costs the most on the Montgomery row (wide product
  // inputs), as in Table I. Our trimmed Barrett exploits that u is a
  // single bit for q=786433 with post-addition inputs, so the Barrett row
  // ordering differs from the paper's (which charges the general width);
  // the bench prints both side by side.
  EXPECT_GT(measured[2].montgomery, measured[0].montgomery);
  EXPECT_GT(measured[2].montgomery, measured[1].montgomery);
  // Order of magnitude vs Table I: our reconstruction trims harder than
  // the paper in places, never the reverse by more than ~25%.
  const double paper_barrett[] = {0, 239, 429};  // 7681 entry not printed
  const double paper_mont[] = {683, 461, 1083};
  for (int i = 0; i < 3; ++i) {
    if (paper_barrett[i] > 0) {
      const double ratio =
          static_cast<double>(measured[i].barrett) / paper_barrett[i];
      EXPECT_GT(ratio, 0.1) << "q=" << measured[i].q;
      EXPECT_LT(ratio, 1.25) << "q=" << measured[i].q;
    }
    const double ratio =
        static_cast<double>(measured[i].montgomery) / paper_mont[i];
    EXPECT_GT(ratio, 0.2) << "q=" << measured[i].q;
    EXPECT_LT(ratio, 1.25) << "q=" << measured[i].q;
  }
}

TEST(BarrettByMultiplication, MatchesModQ) {
  Fixture f;
  const std::uint32_t q = 7681;
  Xoshiro256 rng(77);
  std::vector<std::uint64_t> va(kBlockRows);
  for (auto& x : va) x = rng.next_below(static_cast<std::uint64_t>(q) * q);
  Operand a = f.exec.alloc(26);
  f.exec.host_write(a, va);
  Operand r = barrett_reduce_by_multiplication(f.exec, a, q, true);
  const auto out = f.exec.host_read(r);
  for (std::size_t i = 0; i < kBlockRows; ++i) {
    ASSERT_EQ(out[i], va[i] % q) << "row " << i;
  }
}

TEST(BarrettByMultiplication, FarSlowerThanShiftAdd) {
  // The Fig. 6 BP-2 -> BP-3 gap: multiplication-based reduction loses by
  // a large factor.
  const std::uint32_t q = 12289;
  std::uint64_t cycles_mult = 0;
  std::uint64_t cycles_shift = 0;
  {
    Fixture f;
    Operand a = f.exec.alloc(28);
    f.exec.reset_stats();
    Operand r = barrett_reduce_by_multiplication(f.exec, a, q, false);
    (void)r;
    cycles_mult = f.exec.stats().cycles;
  }
  {
    Fixture f;
    const auto spec = ntt::MontgomeryShiftAdd::paper_spec(q);
    Operand a = f.exec.alloc(28);
    f.exec.reset_stats();
    Operand r = montgomery_reduce(f.exec, a, spec, false);
    (void)r;
    cycles_shift = f.exec.stats().cycles;
  }
  EXPECT_GT(static_cast<double>(cycles_mult) / cycles_shift, 3.0);
}

}  // namespace
}  // namespace cryptopim::pim::circuits
