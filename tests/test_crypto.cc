// Tests for the RLWE PKE with compression and the FO-style KEM
// (src/crypto/pke.*, kem.*): round trips, determinism, compression
// behaviour, tamper/forgery handling, and accelerator integration.
#include <gtest/gtest.h>

#include "crypto/kem.h"
#include "crypto/pke.h"
#include "common/rng.h"
#include "ntt/modular.h"
#include "sim/simulator.h"

namespace cryptopim::crypto {
namespace {

Seed seed_of(std::uint8_t fill) {
  Seed s{};
  s.fill(fill);
  return s;
}

TEST(Compression, RoundTripErrorBounded) {
  const std::uint32_t q = 12289;
  for (const unsigned d : {3u, 4u, 10u, 11u}) {
    for (std::uint32_t x = 0; x < q; x += 7) {
      const auto c = compress_coeff(x, d, q);
      ASSERT_LT(c, 1u << d);
      const auto y = decompress_coeff(c, d, q);
      // Error bound: |x - y| <= ceil(q / 2^{d+1}), modulo wrap-around.
      const std::int64_t diff = ntt::centered(
          ntt::sub_mod(x, y, q), q);
      ASSERT_LE(std::llabs(diff),
                static_cast<std::int64_t>((q + (2u << d) - 1) / (2u << d)))
          << "x=" << x << " d=" << d;
    }
  }
}

TEST(XofSampling, UniformIsDeterministicAndInRange) {
  const auto a1 = sample_uniform_xof(seed_of(1), 0, 1024, 12289);
  const auto a2 = sample_uniform_xof(seed_of(1), 0, 1024, 12289);
  EXPECT_EQ(a1, a2);
  const auto a3 = sample_uniform_xof(seed_of(1), 1, 1024, 12289);
  EXPECT_NE(a1, a3);  // nonce separates streams
  for (const auto c : a1) ASSERT_LT(c, 12289u);
}

TEST(XofSampling, CbdIsCenteredAndBounded) {
  const auto e = sample_cbd_xof(seed_of(2), 0, 4096, 12289, 2);
  std::int64_t sum = 0;
  for (const auto c : e) {
    const auto v = ntt::centered(c, 12289);
    ASSERT_LE(std::llabs(v), 2);
    sum += v;
  }
  EXPECT_LT(std::llabs(sum), 400);
}

TEST(Pke, EncryptDecryptRoundTrip) {
  const PkeScheme pke;
  const auto [pk, sk] = pke.keygen(seed_of(3));
  for (std::uint8_t i = 0; i < 5; ++i) {
    Message m{};
    for (std::size_t b = 0; b < m.size(); ++b) {
      m[b] = static_cast<std::uint8_t>(b * 7 + i);
    }
    const auto ct = pke.encrypt(pk, m, seed_of(static_cast<std::uint8_t>(10 + i)));
    EXPECT_EQ(pke.decrypt(sk, ct), m) << "round " << int(i);
  }
}

TEST(Pke, DeterministicFromCoins) {
  const PkeScheme pke;
  const auto [pk, sk] = pke.keygen(seed_of(4));
  Message m{};
  m[0] = 0xAB;
  const auto c1 = pke.encrypt(pk, m, seed_of(20));
  const auto c2 = pke.encrypt(pk, m, seed_of(20));
  EXPECT_EQ(c1.u, c2.u);
  EXPECT_EQ(c1.v, c2.v);
  const auto c3 = pke.encrypt(pk, m, seed_of(21));
  EXPECT_NE(c1.v, c3.v);
}

TEST(Pke, CompressionShrinksCiphertext) {
  const PkeScheme pke;
  const auto& p = pke.params();
  // du + dv bits per coefficient pair vs 2 * 14 bits uncompressed.
  const double compressed_bits = p.n * (p.du + p.dv);
  const double full_bits = p.n * 2 * 14;
  EXPECT_LT(compressed_bits / full_bits, 0.6);
}

TEST(Pke, WrongKeyYieldsGarbage) {
  const PkeScheme pke;
  const auto [pk, sk] = pke.keygen(seed_of(5));
  const auto [pk2, sk2] = pke.keygen(seed_of(6));
  Message m{};
  m.fill(0x5A);
  const auto ct = pke.encrypt(pk, m, seed_of(30));
  EXPECT_NE(pke.decrypt(sk2, ct), m);
}

TEST(Pke, ManySeedsNoDecryptionFailure) {
  // Noise + compression error must stay within the decoding margin; probe
  // a batch of independent keys/coins.
  const PkeScheme pke;
  for (std::uint8_t s = 0; s < 10; ++s) {
    const auto [pk, sk] = pke.keygen(seed_of(static_cast<std::uint8_t>(40 + s)));
    Message m{};
    m[s % 32] = static_cast<std::uint8_t>(1u << (s % 8));
    const auto ct = pke.encrypt(pk, m, seed_of(static_cast<std::uint8_t>(60 + s)));
    ASSERT_EQ(pke.decrypt(sk, ct), m) << "seed " << int(s);
  }
}

TEST(Kem, EncapsDecapsAgree) {
  const KemScheme kem;
  const auto [pk, sk] = kem.keygen(seed_of(7));
  const auto [ct, key_a] = kem.encapsulate(pk, seed_of(70));
  const auto key_b = kem.decapsulate(sk, ct);
  EXPECT_EQ(key_a, key_b);
}

TEST(Kem, DistinctEntropyDistinctKeys) {
  const KemScheme kem;
  const auto [pk, sk] = kem.keygen(seed_of(8));
  const auto [c1, k1] = kem.encapsulate(pk, seed_of(71));
  const auto [c2, k2] = kem.encapsulate(pk, seed_of(72));
  EXPECT_NE(k1, k2);
  EXPECT_NE(c1.v, c2.v);
}

TEST(Kem, TamperedCiphertextImplicitlyRejected) {
  const KemScheme kem;
  const auto [pk, sk] = kem.keygen(seed_of(9));
  auto [ct, key] = kem.encapsulate(pk, seed_of(73));
  ct.v[0] ^= 1;  // flip one compressed coefficient bit
  const auto rejected = kem.decapsulate(sk, ct);
  EXPECT_NE(rejected, key);
  // Implicit rejection is deterministic.
  EXPECT_EQ(kem.decapsulate(sk, ct), rejected);
}

TEST(Kem, ForgedCiphertextGetsAKeyNotAnError) {
  const KemScheme kem;
  const auto [pk, sk] = kem.keygen(seed_of(10));
  PkeCiphertext forged;
  forged.u.assign(1024, 123);
  forged.v.assign(1024, 7);
  const auto key = kem.decapsulate(sk, forged);
  // No crash, usable-looking key (implicit rejection).
  bool all_zero = true;
  for (const auto b : key) all_zero &= b == 0;
  EXPECT_FALSE(all_zero);
}

TEST(Kem, RunsOnSimulatedCryptoPim) {
  KemScheme kem;
  sim::CryptoPimSimulator simu(ntt::NttParams::for_degree(1024));
  kem.pke().set_multiplier(
      [&simu](const ntt::Poly& a, const ntt::Poly& b) {
        return simu.multiply(a, b);
      });
  const auto [pk, sk] = kem.keygen(seed_of(11));
  const auto [ct, key_a] = kem.encapsulate(pk, seed_of(74));
  EXPECT_EQ(kem.decapsulate(sk, ct), key_a);
  // keygen 1 + encaps 2 + decaps (1 dec + 2 re-encrypt) = 6 ring muls.
  EXPECT_EQ(kem.pke().multiplications(), 6u);
}

}  // namespace
}  // namespace cryptopim::crypto
