// Negative tests of the public API boundaries: malformed inputs must be
// rejected with exceptions (not asserts, which vanish under NDEBUG), and
// never corrupt state.
#include <gtest/gtest.h>

#include "crypto/pke.h"
#include "he/bgv.h"
#include "ntt/ntt.h"
#include "ntt/rns.h"
#include "sim/simulator.h"

namespace cryptopim {
namespace {

TEST(ApiValidation, SimulatorRejectsWrongSizes) {
  sim::CryptoPimSimulator simu(ntt::NttParams::for_degree(256));
  const ntt::Poly good(256, 1);
  const ntt::Poly bad(255, 1);
  EXPECT_THROW(simu.multiply(bad, good), std::invalid_argument);
  EXPECT_THROW(simu.multiply(good, bad), std::invalid_argument);
}

TEST(ApiValidation, SimulatorRejectsNonCanonicalCoefficients) {
  sim::CryptoPimSimulator simu(ntt::NttParams::for_degree(256));
  ntt::Poly a(256, 0), b(256, 0);
  a[3] = 7681;  // == q, not canonical
  EXPECT_THROW(simu.multiply(a, b), std::invalid_argument);
}

TEST(ApiValidation, SimulatorStillWorksAfterRejection) {
  const auto p = ntt::NttParams::for_degree(64);
  sim::CryptoPimSimulator simu(p);
  EXPECT_THROW(simu.multiply(ntt::Poly(63, 0), ntt::Poly(64, 0)),
               std::invalid_argument);
  ntt::Poly one(64, 0), x(64, 0);
  one[0] = 1;
  x[5] = 42;
  EXPECT_EQ(simu.multiply(x, one), x);
}

TEST(ApiValidation, NttEngineRejectsWrongSizes) {
  const ntt::GsNttEngine eng(ntt::NttParams::for_degree(256));
  EXPECT_THROW(eng.negacyclic_multiply(ntt::Poly(128, 0), ntt::Poly(256, 0)),
               std::invalid_argument);
}

TEST(ApiValidation, BgvEncryptValidation) {
  he::BgvContext ctx(he::BgvParams::paper_small(), 1);
  EXPECT_THROW(ctx.encrypt(ntt::Poly(256, 0)), std::logic_error);  // no key
  ctx.keygen();
  EXPECT_THROW(ctx.encrypt(ntt::Poly(128, 0)), std::invalid_argument);
  ntt::Poly big(256, 0);
  big[0] = 2;  // >= t
  EXPECT_THROW(ctx.encrypt(big), std::invalid_argument);
}

TEST(ApiValidation, PkeDecryptRejectsMalformedCiphertext) {
  const crypto::PkeScheme pke;
  crypto::Seed seed{};
  const auto [pk, sk] = pke.keygen(seed);
  crypto::PkeCiphertext short_ct;
  short_ct.u.assign(100, 0);
  short_ct.v.assign(1024, 0);
  EXPECT_THROW(pke.decrypt(sk, short_ct), std::invalid_argument);
}

TEST(ApiValidation, RnsSizeMismatches) {
  const auto basis = ntt::RnsBasis::generate(64, 2, 20);
  EXPECT_THROW(basis.decompose(std::vector<ntt::U128>(32, 0)),
               std::invalid_argument);
  ntt::RnsPoly wrong;
  wrong.residues.resize(1);
  EXPECT_THROW(basis.reconstruct(wrong), std::invalid_argument);
  ntt::RnsPoly ok;
  ok.residues.assign(2, ntt::Poly(64, 0));
  EXPECT_THROW(basis.multiply(ok, wrong), std::invalid_argument);
}

TEST(ApiValidation, ParamConstructionErrors) {
  EXPECT_THROW(ntt::NttParams::make(0, 7681), std::invalid_argument);
  EXPECT_THROW(ntt::NttParams::make(3, 7681), std::invalid_argument);
  EXPECT_THROW(ntt::RnsBasis::generate(64, 1, 1), std::invalid_argument);
}

}  // namespace
}  // namespace cryptopim
