// Fault-injection tests: stuck-at cells (the dominant ReRAM endurance
// failure) must corrupt in-memory arithmetic *detectably* — a downstream
// user can catch them with result verification — and must stay contained
// to the rows/columns they occupy.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "ntt/ntt.h"
#include "ntt/params.h"
#include "pim/circuits/arith.h"
#include "pim/circuits/reduction.h"
#include "pim/switch.h"
#include "reliability/manager.h"
#include "sim/pipelined.h"

namespace cryptopim::pim {
namespace {

TEST(StuckFault, CellIgnoresWrites) {
  MemoryBlock blk;
  blk.inject_stuck_at(10, 5, true);
  EXPECT_TRUE(blk.column(10).get(5));
  blk.write_number(5, 10, 1, 0);
  // Host write is overridden by the fault.
  blk.enforce_faults();
  EXPECT_TRUE(blk.column(10).get(5));
  blk.clear();
  EXPECT_TRUE(blk.column(10).get(5));  // survives power cycling
  blk.clear_faults();
  blk.clear();
  EXPECT_FALSE(blk.column(10).get(5));
}

TEST(StuckFault, GateOutputOverridden) {
  MemoryBlock blk;
  BlockExecutor exec(blk, RowMask::first_rows(4));
  const Col a = exec.alloc_col();
  const Col d = exec.alloc_col();
  blk.inject_stuck_at(d, 2, false);
  exec.gate1(GateKind::kNot, d, a);  // NOT 0 = 1 everywhere
  EXPECT_TRUE(blk.column(d).get(0));
  EXPECT_TRUE(blk.column(d).get(1));
  EXPECT_FALSE(blk.column(d).get(2));  // stuck at 0
  EXPECT_TRUE(blk.column(d).get(3));
}

TEST(StuckFault, CorruptsOnlyTheFaultyRow) {
  // An adder over 512 rows with one stuck cell: exactly the faulty row's
  // result may differ from the scalar reference.
  MemoryBlock blk;
  BlockExecutor exec(blk, RowMask::all());
  Xoshiro256 rng(1);
  std::vector<std::uint64_t> va(kBlockRows), vb(kBlockRows);
  for (auto& x : va) x = rng.next_bits(16);
  for (auto& x : vb) x = rng.next_bits(16);
  const Operand a = exec.alloc(16);
  const Operand b = exec.alloc(16);
  exec.host_write(a, va);
  exec.host_write(b, vb);

  // Stick a bit of operand a in row 77 to 1 (may or may not flip it).
  blk.inject_stuck_at(a.col(3), 77, true);

  const Operand sum = circuits::add(exec, a, b, 17);
  const auto out = exec.host_read(sum);
  unsigned mismatches = 0;
  for (std::size_t r = 0; r < kBlockRows; ++r) {
    if (out[r] != ((va[r] + vb[r]) & 0x1FFFF)) {
      EXPECT_EQ(r, 77u);
      ++mismatches;
    }
  }
  // Deterministic corruption: the expected wrong value is computable.
  const std::uint64_t corrupted_a = va[77] | (1u << 3);
  EXPECT_EQ(out[77], (corrupted_a + vb[77]) & 0x1FFFF);
  EXPECT_LE(mismatches, 1u);
}

TEST(StuckFault, MultiplierFaultIsDetectedByVerification) {
  // The end-to-end defence the robustness story relies on: recompute in
  // software and compare. A single stuck processing cell must surface as
  // a mismatch, not be silently absorbed.
  MemoryBlock clean_blk, faulty_blk;
  BlockExecutor clean(clean_blk, RowMask::first_rows(8));
  BlockExecutor faulty(faulty_blk, RowMask::first_rows(8));

  Xoshiro256 rng(2);
  std::vector<std::uint64_t> va(8), vb(8);
  for (auto& x : va) x = rng.next_bits(16) | 1u;
  for (auto& x : vb) x = rng.next_bits(16) | 1u;

  auto run = [&](BlockExecutor& e, MemoryBlock& blk,
                 bool inject) -> std::vector<std::uint64_t> {
    const Operand a = e.alloc(16);
    const Operand b = e.alloc(16);
    e.host_write(a, va);
    e.host_write(b, vb);
    if (inject) {
      // Stuck-at-0 on the LSB of operand a in row 3 (inputs are forced
      // odd, so the cell actually flips).
      blk.inject_stuck_at(a.col(0), 3, false);
    }
    const Operand prod = circuits::multiply(e, a, b);
    return e.host_read(prod);
  };

  const auto good = run(clean, clean_blk, false);
  const auto bad = run(faulty, faulty_blk, true);
  EXPECT_NE(good, bad);  // verification catches it
  for (std::size_t r = 0; r < 8; ++r) {
    EXPECT_EQ(good[r], va[r] * vb[r]);
  }
}

TEST(StuckFault, SurvivesSwitchTransfer) {
  MemoryBlock src, dst;
  BlockExecutor se(src, RowMask::first_rows(4));
  BlockExecutor de(dst, RowMask::first_rows(4));
  const Operand so = se.alloc(8);
  const Operand dop = de.alloc(8);
  se.host_write(so, std::vector<std::uint64_t>{0xFF, 0xFF, 0xFF, 0xFF});
  dst.inject_stuck_at(dop.col(0), 1, false);

  FixedFunctionSwitch sw(1);
  sw.transfer(src, so, se.mask(), de, dop,
              FixedFunctionSwitch::Route::kStraight);
  const auto out = de.host_read(dop);
  EXPECT_EQ(out[0], 0xFFu);
  EXPECT_EQ(out[1], 0xFEu);  // bit 0 stuck low
}

namespace {
/// Records parity mismatches the switch's destination recount reports.
struct ParityRecorder final : TransferFaultHooks {
  bool corrupt_bit() override { return false; }
  void parity_mismatch(std::size_t row) override { rows.push_back(row); }
  std::vector<std::size_t> rows;
};
}  // namespace

TEST(StuckFault, DestinationBlockFaultCaughtByTransferParity) {
  // Satellite of the reliability story: a stuck cell in the *destination*
  // block of a switch transfer flips the landed data, and the parity
  // column's recount at the destination flags exactly that row.
  MemoryBlock src, dst;
  BlockExecutor se(src, RowMask::first_rows(4));
  BlockExecutor de(dst, RowMask::first_rows(4));
  const Operand so = se.alloc(8);
  const Operand dop = de.alloc(8);
  se.host_write(so, std::vector<std::uint64_t>{0xFF, 0xFF, 0xFF, 0xFF});
  dst.inject_stuck_at(dop.col(0), 1, false);  // bit 0 of row 1 stuck low

  ParityRecorder rec;
  FixedFunctionSwitch sw(1);
  sw.set_fault_hooks(&rec, /*parity=*/true);
  sw.transfer(src, so, se.mask(), de, dop,
              FixedFunctionSwitch::Route::kStraight);
  ASSERT_EQ(rec.rows.size(), 1u);
  EXPECT_EQ(rec.rows[0], 1u);
  // The corruption itself still landed (detection, not correction).
  EXPECT_EQ(de.host_read(dop)[1], 0xFEu);

  // Without the parity column the same fault goes unnoticed in flight.
  ParityRecorder deaf;
  FixedFunctionSwitch sw2(1);
  sw2.set_fault_hooks(&deaf, /*parity=*/false);
  sw2.transfer(src, so, se.mask(), de, dop,
              FixedFunctionSwitch::Route::kStraight);
  EXPECT_TRUE(deaf.rows.empty());
}

TEST(StuckFault, MidPipelineFaultCaughtAndRecovered) {
  // A stuck cell in a mid-pipeline stage block corrupts jobs streaming
  // through the PipelinedSimulator; the reliability layer must catch it,
  // remap the column, and deliver bit-exact results for every job.
  const auto params = ntt::NttParams::for_degree(256);
  reliability::ReliabilityConfig rc;
  rc.verify.points = 2;
  reliability::ReliabilityManager rm(rc, params);
  rm.fault_model().add_stuck_at(/*block=*/7, /*col=*/10, /*row=*/4, true);

  sim::PipelinedSimulator pipe(params);
  pipe.set_reliability(&rm);
  ntt::GsNttEngine engine(params);
  Xoshiro256 rng(31);
  std::vector<std::pair<ntt::Poly, ntt::Poly>> pairs;
  for (int i = 0; i < 2; ++i) {
    ntt::Poly a(params.n), b(params.n);
    for (auto& c : a) c = static_cast<std::uint32_t>(rng.next_below(params.q));
    for (auto& c : b) c = static_cast<std::uint32_t>(rng.next_below(params.q));
    pairs.emplace_back(std::move(a), std::move(b));
  }
  const auto results = pipe.multiply_stream(pairs);
  ASSERT_EQ(results.size(), pairs.size());
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(results[i],
              engine.negacyclic_multiply(pairs[i].first, pairs[i].second));
  }
  const auto& s = pipe.report().reliability;
  EXPECT_TRUE(s.verified);
  EXPECT_GT(s.parity_mismatches + s.write_verify_failures, 0u);
  EXPECT_GE(s.columns_remapped, 1u);
}

TEST(StuckFault, ZeroRailFaultIsCatastrophic) {
  // A stuck-at-1 on the shared zero rail poisons every zero-extended
  // operand — the design must treat rail cells as high-reliability.
  MemoryBlock blk;
  BlockExecutor exec(blk, RowMask::first_rows(2));
  const Operand a = exec.alloc(4);
  exec.host_write(a, std::vector<std::uint64_t>{1, 2});
  blk.inject_stuck_at(exec.zero_col(), 0, true);
  const Operand wide = exec.zext(a, 8);
  const auto out = exec.host_read(wide);
  EXPECT_NE(out[0], 1u);  // high bits read the poisoned rail
  EXPECT_EQ(out[1], 2u);  // other rows unaffected
}

}  // namespace
}  // namespace cryptopim::pim
