// Tests for the latency/energy/performance model (src/model/*): the model
// must regenerate the paper's Table II and Fig. 4/5 numbers from structure
// + per-op latencies, with only the single documented energy calibration.
#include <gtest/gtest.h>

#include "arch/pipeline.h"
#include "model/latency.h"
#include "model/paper_constants.h"
#include "model/performance.h"
#include "ntt/params.h"

namespace cryptopim::model {
namespace {

TEST(Latency, PaperSets) {
  const auto s16 = paper_latency(256);
  EXPECT_EQ(s16.bitwidth, 16u);
  EXPECT_EQ(s16.add, 97u);
  EXPECT_EQ(s16.sub, 113u);
  EXPECT_EQ(s16.mult, 1483u);
  EXPECT_EQ(s16.montgomery, 683u);
  EXPECT_EQ(s16.transfer, 48u);
  const auto s32 = paper_latency(32768);
  EXPECT_EQ(s32.mult, 6291u);
  EXPECT_EQ(s32.barrett, 429u);
  EXPECT_EQ(s32.montgomery, 1083u);
  EXPECT_EQ(s32.transfer, 96u);
}

TEST(Latency, MeasuredSetsAreCloseToPaper) {
  for (const std::uint32_t n : {256u, 32768u}) {
    const auto paper = paper_latency(n);
    const auto meas = measured_latency(n);
    EXPECT_EQ(meas.add, paper.add);  // exact by construction
    EXPECT_EQ(meas.sub, paper.sub);
    const double mult_ratio =
        static_cast<double>(meas.mult) / static_cast<double>(paper.mult);
    EXPECT_GT(mult_ratio, 0.85);
    EXPECT_LT(mult_ratio, 1.20);
    EXPECT_GT(meas.montgomery, 0u);
    EXPECT_GT(meas.barrett, 0u);
  }
}

TEST(Fig4, StageLatencies) {
  // Slowest stage at n=256/16-bit: 2700 (area-efficient, we add the 48-
  // cycle switch hop the paper leaves out of this figure), 1756 (naive;
  // our reconstruction yields mult+transfer = 1531), 1643 (CryptoPIM;
  // ours: 1644).
  const auto l = paper_latency(256);
  auto slowest = [&l](arch::PipelineVariant v) {
    const auto spec = arch::PipelineSpec::build(256, v);
    std::uint64_t worst = 0;
    for (const auto& st : spec.stages) {
      worst = std::max(worst, stage_cycles(st, l));
    }
    return worst;
  };
  EXPECT_EQ(slowest(arch::PipelineVariant::kAreaEfficient), 2748u);
  EXPECT_EQ(slowest(arch::PipelineVariant::kNaive), 1531u);
  EXPECT_EQ(slowest(arch::PipelineVariant::kCryptoPim), 1644u);
  // Within a whisker of the published figures.
  EXPECT_NEAR(2748.0 / paper::kFig4AreaEfficientStage, 1.0, 0.02);
  EXPECT_NEAR(1531.0 / paper::kFig4NaiveStage, 1.0, 0.15);
  EXPECT_NEAR(1644.0 / paper::kFig4CryptoPimStage, 1.0, 0.001);
}

TEST(Fig4, CryptoPimBalancesThePipeline) {
  // The CryptoPIM grouping's slowest stage must beat the area-efficient
  // grouping's, and the two stages of a butterfly level must be closer in
  // latency than naive's extremes.
  const auto l = paper_latency(256);
  const auto cp =
      arch::PipelineSpec::build(256, arch::PipelineVariant::kCryptoPim);
  std::uint64_t worst = 0, best = ~0ull;
  for (const auto& st : cp.stages) {
    const auto c = stage_cycles(st, l);
    worst = std::max(worst, c);
    best = std::min(best, c);
  }
  EXPECT_LT(worst, 2748u);
  // Balance ratio strictly better than the naive pipeline's.
  const auto nv = arch::PipelineSpec::build(256, arch::PipelineVariant::kNaive);
  std::uint64_t nworst = 0, nbest = ~0ull;
  for (const auto& st : nv.stages) {
    const auto c = stage_cycles(st, l);
    nworst = std::max(nworst, c);
    nbest = std::min(nbest, c);
  }
  EXPECT_LT(static_cast<double>(worst) / best,
            static_cast<double>(nworst) / nbest);
}

class Table2 : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(Table2, PipelinedLatencyMatchesPaper) {
  const std::uint32_t n = GetParam();
  const auto perf = cryptopim_pipelined(n);
  const auto ref = paper::row_for(paper::cryptopim_rows(), n);
  ASSERT_TRUE(ref.has_value());
  EXPECT_NEAR(perf.latency_us / ref->latency_us, 1.0, 0.005) << perf.latency_us;
}

TEST_P(Table2, PipelinedThroughputMatchesPaper) {
  const std::uint32_t n = GetParam();
  const auto perf = cryptopim_pipelined(n);
  const auto ref = paper::row_for(paper::cryptopim_rows(), n);
  ASSERT_TRUE(ref.has_value());
  EXPECT_NEAR(perf.throughput_per_s / ref->throughput_per_s, 1.0, 0.005);
}

TEST_P(Table2, EnergyPredictionWithinTwoPercent) {
  // Calibrated at n=256 only; every other degree is a prediction.
  const std::uint32_t n = GetParam();
  const auto perf = cryptopim_pipelined(n);
  const auto ref = paper::row_for(paper::cryptopim_rows(), n);
  ASSERT_TRUE(ref.has_value());
  EXPECT_NEAR(perf.energy_uj / ref->energy_uj, 1.0, 0.02) << perf.energy_uj;
}

INSTANTIATE_TEST_SUITE_P(AllDegrees, Table2,
                         ::testing::ValuesIn(ntt::paper_degrees()));

TEST(Fig5, PipeliningTradeoffs) {
  // Throughput gain and latency overhead bands (paper: 27.8x / 36.3x gain,
  // +29% / +59.7% latency for small / large n).
  for (const std::uint32_t n : ntt::paper_degrees()) {
    const auto p = cryptopim_pipelined(n);
    const auto np = cryptopim_non_pipelined(n);
    const double gain = p.throughput_per_s / np.throughput_per_s;
    const double overhead = p.latency_us / np.latency_us - 1.0;
    EXPECT_GT(gain, 20.0) << "n=" << n;
    EXPECT_LT(gain, 50.0) << "n=" << n;
    EXPECT_GT(overhead, 0.15) << "n=" << n;
    EXPECT_LT(overhead, 0.75) << "n=" << n;
    if (n > 1024) {
      EXPECT_NEAR(overhead, paper::kLatencyOverheadLargeN, 0.05) << "n=" << n;
    }
  }
}

TEST(Fig5, PipelinedThroughputConstantPerBitwidth) {
  // "the pipelined-throughput remains the same for the degrees processed
  // in the same bit-width".
  const double t256 = cryptopim_pipelined(256).throughput_per_s;
  const double t1k = cryptopim_pipelined(1024).throughput_per_s;
  EXPECT_DOUBLE_EQ(t256, t1k);
  const double t2k = cryptopim_pipelined(2048).throughput_per_s;
  const double t32k = cryptopim_pipelined(32768).throughput_per_s;
  EXPECT_DOUBLE_EQ(t2k, t32k);
  EXPECT_LT(t2k, t256);
}

TEST(Fig5, EnergyGrowsWithDegree) {
  double prev = 0;
  for (const std::uint32_t n : ntt::paper_degrees()) {
    const double e = cryptopim_pipelined(n).energy_uj;
    EXPECT_GT(e, prev);
    prev = e;
  }
}

TEST(Fig5, PipelineEnergyOverheadIsSmall) {
  // Paper: +1.6% on average (extra block-to-block transfers only).
  double total = 0;
  for (const std::uint32_t n : ntt::paper_degrees()) {
    const auto p = cryptopim_pipelined(n);
    const auto np = cryptopim_non_pipelined(n);
    const double ovh = p.energy_uj / np.energy_uj - 1.0;
    EXPECT_GT(ovh, 0.0) << "n=" << n;
    EXPECT_LT(ovh, 0.05) << "n=" << n;
    total += ovh;
  }
  EXPECT_NEAR(total / 8, paper::kPipelineEnergyOverhead, 0.01);
}

TEST(EnergyModel, CalibrationAnchor) {
  const auto em = EnergyModel::calibrated();
  EXPECT_GT(em.cell_event_fj, 0.0);
  // Anchor row reproduced exactly.
  EXPECT_NEAR(cryptopim_pipelined(256).energy_uj, 2.58, 1e-9);
}

TEST(Latency, MeasuredLatencyIsCachedPerParameterSet) {
  // Two degrees sharing (q, bitwidth) must yield identical op latencies.
  const auto a = measured_latency(512);
  const auto b = measured_latency(1024);
  EXPECT_EQ(a.mult, b.mult);
  EXPECT_EQ(a.barrett, b.barrett);
  EXPECT_EQ(a.q, 12289u);
}

}  // namespace
}  // namespace cryptopim::model
