// Tests for the in-memory arithmetic circuits (src/pim/circuits/arith.*):
// functional correctness against scalar arithmetic over random inputs in
// all rows simultaneously, and the cycle-count contracts of Section
// III-B.2 (add = 6N+1, sub = 7N+1, multiply tracking 6.5N^2-11.5N+3).
#include "pim/circuits/arith.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace cryptopim::pim::circuits {
namespace {

struct Fixture {
  MemoryBlock blk;
  BlockExecutor exec;
  explicit Fixture(std::size_t rows = kBlockRows)
      : exec(blk, RowMask::first_rows(rows)) {
    exec.reset_stats();  // drop the one-rail init cycle for exact counts
  }

  Operand input(unsigned width, std::span<const std::uint64_t> vals) {
    Operand op = exec.alloc(width);
    exec.host_write(op, vals);
    return op;
  }
};

std::vector<std::uint64_t> random_values(std::size_t n, unsigned bits,
                                         std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<std::uint64_t> v(n);
  for (auto& x : v) x = rng.next_bits(bits);
  return v;
}

class AddSubWidth : public ::testing::TestWithParam<unsigned> {};

TEST_P(AddSubWidth, AddMatchesScalarAllRows) {
  const unsigned w = GetParam();
  Fixture f;
  const auto va = random_values(kBlockRows, w, 1000 + w);
  const auto vb = random_values(kBlockRows, w, 2000 + w);
  const Operand a = f.input(w, va);
  const Operand b = f.input(w, vb);

  const Operand sum = add(f.exec, a, b, w + 1);
  const auto out = f.exec.host_read(sum);
  const std::uint64_t mask = (std::uint64_t{1} << (w + 1)) - 1;
  for (std::size_t r = 0; r < kBlockRows; ++r) {
    ASSERT_EQ(out[r], (va[r] + vb[r]) & mask) << "row " << r;
  }
}

TEST_P(AddSubWidth, AddCyclesExactly6NPlus1) {
  const unsigned w = GetParam();
  Fixture f;
  const Operand a = f.exec.alloc(w);
  const Operand b = f.exec.alloc(w);
  f.exec.reset_stats();
  const Operand sum = add(f.exec, a, b, w);
  (void)sum;
  EXPECT_EQ(f.exec.stats().cycles, add_cycles(w));
}

TEST_P(AddSubWidth, SubMatchesScalarAllRows) {
  const unsigned w = GetParam();
  Fixture f;
  const auto va = random_values(kBlockRows, w, 3000 + w);
  const auto vb = random_values(kBlockRows, w, 4000 + w);
  const Operand a = f.input(w, va);
  const Operand b = f.input(w, vb);

  const SubResult d = sub(f.exec, a, b, w);
  const auto out = f.exec.host_read(d.diff);
  const std::uint64_t mask = w >= 64 ? ~std::uint64_t{0}
                                     : (std::uint64_t{1} << w) - 1;
  for (std::size_t r = 0; r < kBlockRows; ++r) {
    ASSERT_EQ(out[r], (va[r] - vb[r]) & mask) << "row " << r;
    // Borrow flag: 1 iff a >= b.
    ASSERT_EQ(f.blk.column(d.no_borrow).get(r), va[r] >= vb[r]) << "row " << r;
  }
}

TEST_P(AddSubWidth, SubCyclesExactly7NPlus1) {
  const unsigned w = GetParam();
  Fixture f;
  const Operand a = f.exec.alloc(w);
  const Operand b = f.exec.alloc(w);
  f.exec.reset_stats();
  const SubResult d = sub(f.exec, a, b, w);
  (void)d;
  EXPECT_EQ(f.exec.stats().cycles, sub_cycles(w));
}

INSTANTIATE_TEST_SUITE_P(PaperWidths, AddSubWidth,
                         ::testing::Values(4u, 8u, 16u, 20u, 32u, 48u));

class MultiplyWidth : public ::testing::TestWithParam<unsigned> {};

TEST_P(MultiplyWidth, MatchesScalarAllRows) {
  const unsigned w = GetParam();
  Fixture f;
  const auto va = random_values(kBlockRows, w, 5000 + w);
  const auto vb = random_values(kBlockRows, w, 6000 + w);
  const Operand a = f.input(w, va);
  const Operand b = f.input(w, vb);

  const Operand prod = multiply(f.exec, a, b);
  ASSERT_EQ(prod.width(), 2 * w);
  const auto out = f.exec.host_read(prod);
  for (std::size_t r = 0; r < kBlockRows; ++r) {
    ASSERT_EQ(out[r], va[r] * vb[r]) << "row " << r;
  }
}

TEST_P(MultiplyWidth, CyclesTrackPaperFormula) {
  const unsigned w = GetParam();
  if (w < 16) {
    // The paper's quadratic fit has a large negative linear term; below the
    // datapath widths it actually uses (16/32) fixed overheads dominate and
    // the formula is not meaningful.
    GTEST_SKIP();
  }
  Fixture f;
  const Operand a = f.exec.alloc(w);
  const Operand b = f.exec.alloc(w);
  f.exec.reset_stats();
  const Operand prod = multiply(f.exec, a, b);
  (void)prod;
  const double measured = static_cast<double>(f.exec.stats().cycles);
  const double paper = static_cast<double>(mult_cycles(w));
  // Our generic carry-save multiplier vs the paper's hand-tuned microcode:
  // the gap shrinks with width (see EXPERIMENTS.md).
  EXPECT_GE(measured / paper, 0.85) << "measured " << measured;
  EXPECT_LE(measured / paper, 1.20) << "measured " << measured;
}

TEST_P(MultiplyWidth, ColumnsAreRecycled) {
  const unsigned w = GetParam();
  Fixture f;
  const Operand a = f.exec.alloc(w);
  const Operand b = f.exec.alloc(w);
  const std::size_t before = f.exec.free_count();
  const Operand prod = multiply(f.exec, a, b);
  f.exec.free(prod);
  EXPECT_EQ(f.exec.free_count(), before);  // no leaked temp columns
}

INSTANTIATE_TEST_SUITE_P(PaperWidths, MultiplyWidth,
                         ::testing::Values(4u, 8u, 16u, 24u, 32u));

TEST(Multiply, EdgeValues) {
  Fixture f(4);
  const std::vector<std::uint64_t> va = {0, 0xFFFF, 1, 0x8000};
  const std::vector<std::uint64_t> vb = {12345, 0xFFFF, 1, 2};
  const Operand a = f.input(16, va);
  const Operand b = f.input(16, vb);
  const Operand prod = multiply(f.exec, a, b);
  const auto out = f.exec.host_read(prod);
  for (std::size_t r = 0; r < 4; ++r) EXPECT_EQ(out[r], va[r] * vb[r]);
}

TEST(Multiply, AsymmetricWidths) {
  Fixture f(8);
  const auto va = random_values(8, 20, 77);
  const auto vb = random_values(8, 6, 78);
  const Operand a = f.input(20, va);
  const Operand b = f.input(6, vb);
  const Operand prod = multiply(f.exec, a, b);
  ASSERT_EQ(prod.width(), 26u);
  const auto out = f.exec.host_read(prod);
  for (std::size_t r = 0; r < 8; ++r) EXPECT_EQ(out[r], va[r] * vb[r]);
}

class Baseline35Width : public ::testing::TestWithParam<unsigned> {};

TEST_P(Baseline35Width, MatchesScalarAllRows) {
  const unsigned w = GetParam();
  Fixture f;
  const auto va = random_values(kBlockRows, w, 7000 + w);
  const auto vb = random_values(kBlockRows, w, 8000 + w);
  const Operand a = f.input(w, va);
  const Operand b = f.input(w, vb);
  const Operand prod = multiply_baseline35(f.exec, a, b);
  ASSERT_EQ(prod.width(), 2 * w);
  const auto out = f.exec.host_read(prod);
  for (std::size_t r = 0; r < kBlockRows; ++r) {
    ASSERT_EQ(out[r], va[r] * vb[r]) << "row " << r;
  }
}

TEST_P(Baseline35Width, CyclesTrackHajAliFormula) {
  const unsigned w = GetParam();
  if (w < 16) GTEST_SKIP();
  Fixture f;
  const Operand a = f.exec.alloc(w);
  const Operand b = f.exec.alloc(w);
  f.exec.reset_stats();
  const Operand prod = multiply_baseline35(f.exec, a, b);
  (void)prod;
  const double ratio = static_cast<double>(f.exec.stats().cycles) /
                       static_cast<double>(mult_cycles_baseline(w));
  EXPECT_GT(ratio, 0.80);
  EXPECT_LT(ratio, 1.15);
}

TEST_P(Baseline35Width, SlowerThanCryptoPimMultiplier) {
  // The BP-1 -> BP-2 gap of Fig. 6 at the circuit level.
  const unsigned w = GetParam();
  if (w < 16) GTEST_SKIP();
  std::uint64_t base = 0, cp = 0;
  {
    Fixture f;
    const Operand a = f.exec.alloc(w), b = f.exec.alloc(w);
    f.exec.reset_stats();
    (void)multiply_baseline35(f.exec, a, b);
    base = f.exec.stats().cycles;
  }
  {
    Fixture f;
    const Operand a = f.exec.alloc(w), b = f.exec.alloc(w);
    f.exec.reset_stats();
    (void)multiply(f.exec, a, b);
    cp = f.exec.stats().cycles;
  }
  EXPECT_GT(static_cast<double>(base) / cp, 1.4) << "w=" << w;
}

INSTANTIATE_TEST_SUITE_P(PaperWidths, Baseline35Width,
                         ::testing::Values(4u, 8u, 16u, 32u));

TEST(AddTrimmed, MatchesScalarWithShiftedViews) {
  Fixture f;
  const auto va = random_values(kBlockRows, 12, 88);
  const Operand a = f.input(12, va);
  // a + (a << 3) = 9a, mostly rail bits in the shifted view.
  const Operand sh = f.exec.shifted(a, 3);
  const Operand r = add_trimmed(f.exec, sh, a, 16);
  const auto out = f.exec.host_read(r);
  for (std::size_t i = 0; i < kBlockRows; ++i) {
    ASSERT_EQ(out[i], (9 * va[i]) & 0xFFFF);
  }
}

TEST(AddTrimmed, CheaperThanUniformAdd) {
  Fixture f;
  const Operand a = f.exec.alloc(12);
  const Operand sh = f.exec.shifted(a, 6);
  f.exec.reset_stats();
  const Operand r = add_trimmed(f.exec, sh, a, 18);
  (void)r;
  const auto trimmed = f.exec.stats().cycles;
  EXPECT_LT(trimmed, add_cycles(18));
}

TEST(SubTrimmed, MatchesScalar) {
  Fixture f;
  const auto va = random_values(kBlockRows, 14, 99);
  const Operand a = f.input(14, va);
  // (a << 4) - a = 15a, always non-negative.
  const Operand sh = f.exec.shifted(a, 4);
  const Operand r = sub_trimmed(f.exec, sh, a, 18);
  const auto out = f.exec.host_read(r);
  for (std::size_t i = 0; i < kBlockRows; ++i) {
    ASSERT_EQ(out[i], 15 * va[i]);
  }
}

TEST(ShiftAddChain, EvaluatesPaperConstants) {
  // 12289 = 2^13 + 2^12 + 1 applied to random 2-bit u (the Barrett path).
  Fixture f;
  const std::vector<ShiftAddTerm> terms = {{13, +1}, {12, +1}, {0, +1}};
  const auto vu = random_values(kBlockRows, 2, 123);
  const Operand u = f.input(2, vu);
  const Operand uq = shift_add_chain(f.exec, u, terms, 16);
  const auto out = f.exec.host_read(uq);
  for (std::size_t i = 0; i < kBlockRows; ++i) {
    ASSERT_EQ(out[i], (vu[i] * 12289) & 0xFFFF);
  }
}

TEST(ShiftAddChain, NegativeTerms) {
  // 7681 = 2^13 - 2^9 + 1.
  Fixture f;
  const std::vector<ShiftAddTerm> terms = {{13, +1}, {9, -1}, {0, +1}};
  const auto vu = random_values(kBlockRows, 3, 321);
  const Operand u = f.input(3, vu);
  const Operand uq = shift_add_chain(f.exec, u, terms, 17);
  const auto out = f.exec.host_read(uq);
  for (std::size_t i = 0; i < kBlockRows; ++i) {
    ASSERT_EQ(out[i], vu[i] * 7681);
  }
}

TEST(ShiftAddChain, WrapsModuloOutWidth) {
  // Montgomery m-computation relies on mod-2^w truncation.
  Fixture f;
  const std::vector<ShiftAddTerm> terms = {{13, +1}, {12, +1}, {0, -1}};
  const auto va = random_values(kBlockRows, 15, 555);
  const Operand a = f.input(15, va);
  const Operand m = shift_add_chain(f.exec, a, terms, 18);
  const auto out = f.exec.host_read(m);
  for (std::size_t i = 0; i < kBlockRows; ++i) {
    ASSERT_EQ(out[i], (va[i] * 12287) & ((1u << 18) - 1));
  }
}

TEST(ConditionalSubtract, SelectsPerRow) {
  Fixture f(6);
  const std::uint64_t q = 7681;
  const std::vector<std::uint64_t> va = {0, 7680, 7681, 7682, 15361, 10000};
  const Operand a = f.input(14, va);
  const Operand r = conditional_subtract(f.exec, a, q);
  const auto out = f.exec.host_read(r);
  for (std::size_t i = 0; i < va.size(); ++i) {
    ASSERT_EQ(out[i], va[i] >= q ? va[i] - q : va[i]) << "row " << i;
  }
}

TEST(Mux, BitwiseSelect) {
  Fixture f(4);
  const std::vector<std::uint64_t> vx = {1, 2, 3, 4};
  const std::vector<std::uint64_t> vy = {10, 20, 30, 40};
  const Operand x = f.input(8, vx);
  const Operand y = f.input(8, vy);
  const Col sel = f.exec.alloc_col();
  f.blk.column(sel).set(0, true);
  f.blk.column(sel).set(2, true);
  const Operand m = mux(f.exec, sel, x, y);
  const auto out = f.exec.host_read(m);
  EXPECT_EQ(out, (std::vector<std::uint64_t>{1, 20, 3, 40}));
}

TEST(CycleFormulas, PaperValues) {
  // Anchor the analytic constants quoted in the paper text.
  EXPECT_EQ(add_cycles(16), 97u);
  EXPECT_EQ(sub_cycles(16), 113u);
  EXPECT_EQ(mult_cycles(16), 1483u);   // 6.5*256 - 11.5*16 + 3
  EXPECT_EQ(mult_cycles(32), 6291u);   // 6.5*1024 - 11.5*32 + 3
  EXPECT_EQ(mult_cycles_baseline(16), 3110u);  // 13*256 - 14*16 + 6
  EXPECT_EQ(mult_cycles_baseline(32), 12870u);
}

}  // namespace
}  // namespace cryptopim::pim::circuits
