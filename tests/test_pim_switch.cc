// Tests for the fixed-function inter-block switch (src/pim/switch.*) and
// the RRAM device model / Monte-Carlo robustness sweep (src/pim/device.*).
#include <gtest/gtest.h>

#include "common/rng.h"
#include "pim/device.h"
#include "pim/switch.h"

namespace cryptopim::pim {
namespace {

TEST(FixedFunctionSwitch, StraightRoutePreservesRows) {
  MemoryBlock src, dst;
  BlockExecutor sexec(src, RowMask::first_rows(8));
  BlockExecutor dexec(dst, RowMask::first_rows(8));
  const Operand so = sexec.alloc(16);
  const Operand dop = dexec.alloc(16);
  std::vector<std::uint64_t> vals = {1, 2, 3, 4, 5, 6, 7, 8};
  sexec.host_write(so, vals);

  FixedFunctionSwitch sw(4);
  sw.transfer(src, so, sexec.mask(), dexec, dop,
              FixedFunctionSwitch::Route::kStraight);
  EXPECT_EQ(dexec.host_read(dop), vals);
}

TEST(FixedFunctionSwitch, PlusAndMinusRoutes) {
  MemoryBlock src, dst;
  BlockExecutor sexec(src, RowMask::first_rows(8));
  BlockExecutor dexec(dst, RowMask::all());
  const Operand so = sexec.alloc(8);
  const Operand dop = dexec.alloc(8);
  std::vector<std::uint64_t> vals = {10, 20, 30, 40, 50, 60, 70, 80};
  sexec.host_write(so, vals);

  FixedFunctionSwitch sw(2);
  sw.transfer(src, so, sexec.mask(), dexec, dop,
              FixedFunctionSwitch::Route::kPlusS);
  // Row r of src lands in row r+2 of dst.
  const auto all = dexec.host_read(dop);
  for (std::size_t r = 0; r < 8; ++r) EXPECT_EQ(all[r + 2], vals[r]);

  sw.transfer(src, so, sexec.mask(), dexec, dop,
              FixedFunctionSwitch::Route::kMinusS);
  const auto all2 = dexec.host_read(dop);
  // Rows 0,1 of src would land at -2/-1: dropped. Row 2 -> row 0.
  for (std::size_t r = 2; r < 8; ++r) EXPECT_EQ(all2[r - 2], vals[r]);
}

TEST(FixedFunctionSwitch, TransferCostIsWidthCyclesPerRoute) {
  MemoryBlock src, dst;
  BlockExecutor sexec(src, RowMask::first_rows(4));
  BlockExecutor dexec(dst, RowMask::first_rows(4));
  const Operand so = sexec.alloc(16);
  const Operand dop = dexec.alloc(16);
  dexec.reset_stats();
  FixedFunctionSwitch sw(1);
  // The paper: "transferring data between two blocks in NTT requires only
  // 3*bitwidth cycles, one each for A-to-A, A-to-(A+s), and A-to-(A-s)".
  sw.transfer(src, so, sexec.mask(), dexec, dop,
              FixedFunctionSwitch::Route::kStraight);
  sw.transfer(src, so, sexec.mask(), dexec, dop,
              FixedFunctionSwitch::Route::kPlusS);
  sw.transfer(src, so, sexec.mask(), dexec, dop,
              FixedFunctionSwitch::Route::kMinusS);
  EXPECT_EQ(dexec.stats().cycles, 3u * 16u);
}

TEST(FixedFunctionSwitch, LogicCostIndependentOfPortCount) {
  EXPECT_EQ(FixedFunctionSwitch::logic_per_row(), 3u);
  // A crossbar needs per-row logic proportional to the row count.
  EXPECT_EQ(FixedFunctionSwitch::crossbar_logic_per_row(512), 512u);
}

TEST(DeviceModel, PaperParameters) {
  const auto dev = DeviceModel::paper_45nm();
  EXPECT_DOUBLE_EQ(dev.cycle_ns, 1.1);
  EXPECT_GT(dev.r_off_ohm / dev.r_on_ohm, 100.0);  // high Roff/Ron
}

TEST(DeviceModel, MonteCarloNoiseMargin) {
  // Section IV-A: 5000 trials, 10% variation, max 25.6% margin reduction,
  // still functional. Our resistive-divider model with the same knobs must
  // show a bounded, non-fatal degradation.
  const auto dev = DeviceModel::paper_45nm();
  Xoshiro256 rng(2020);
  const auto res = monte_carlo_noise_margin(dev, 5000, 0.10, rng);
  EXPECT_GT(res.nominal_margin, 0.0);
  EXPECT_GT(res.max_reduction_pct, 0.0);
  EXPECT_LT(res.max_reduction_pct, 30.0);
  EXPECT_TRUE(res.functional);
}

TEST(DeviceModel, HigherVariationDegradesMore) {
  const auto dev = DeviceModel::paper_45nm();
  Xoshiro256 rng1(1), rng2(1);
  const auto low = monte_carlo_noise_margin(dev, 2000, 0.05, rng1);
  const auto high = monte_carlo_noise_margin(dev, 2000, 0.30, rng2);
  EXPECT_LT(low.max_reduction_pct, high.max_reduction_pct);
}

TEST(ExecStats, EnergyAccounting) {
  const auto dev = DeviceModel::paper_45nm();
  ExecStats s;
  s.cell_events = 1000;
  s.transfer_bits = 100;
  const double e = s.energy_fj(dev);
  EXPECT_DOUBLE_EQ(e, 1000 * dev.cell_switch_energy_fj +
                          100 * dev.switch_transfer_energy_fj);
  ExecStats t;
  t.cycles = 5;
  t.cell_events = 1;
  s += t;
  EXPECT_EQ(s.cycles, 5u);
  EXPECT_EQ(s.cell_events, 1001u);
}

}  // namespace
}  // namespace cryptopim::pim
