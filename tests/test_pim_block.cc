// Tests for the crossbar block, row masks, executor column allocation and
// gate micro-op semantics (src/pim/block.*, executor.*, isa.h).
#include <gtest/gtest.h>

#include "common/rng.h"
#include "pim/block.h"
#include "pim/executor.h"

namespace cryptopim::pim {
namespace {

TEST(MemoryBlock, NumberRoundTripMsbFirst) {
  MemoryBlock blk;
  blk.write_number(3, 10, 16, 0xBEEF);
  EXPECT_EQ(blk.read_number(3, 10, 16), 0xBEEFu);
  // MSB-first: the most significant bit sits in the lowest column.
  EXPECT_TRUE(blk.column(10).get(3));   // 0xBEEF bit 15 = 1
  EXPECT_TRUE(blk.column(25).get(3));   // bit 0 = 1
  EXPECT_FALSE(blk.column(11).get(3));  // bit 14 = 0
}

TEST(MemoryBlock, RowsAreIndependent) {
  MemoryBlock blk;
  blk.write_number(0, 0, 8, 0xAA);
  blk.write_number(1, 0, 8, 0x55);
  EXPECT_EQ(blk.read_number(0, 0, 8), 0xAAu);
  EXPECT_EQ(blk.read_number(1, 0, 8), 0x55u);
}

TEST(MemoryBlock, ClearResetsEverything) {
  MemoryBlock blk;
  blk.write_number(100, 100, 32, 0xDEADBEEF);
  blk.clear();
  EXPECT_EQ(blk.read_number(100, 100, 32), 0u);
}

TEST(RowMask, FirstRowsAndCount) {
  EXPECT_EQ(RowMask::first_rows(0).count(), 0u);
  EXPECT_EQ(RowMask::first_rows(17).count(), 17u);
  EXPECT_EQ(RowMask::first_rows(64).count(), 64u);
  EXPECT_EQ(RowMask::first_rows(100).count(), 100u);
  EXPECT_EQ(RowMask::all().count(), kBlockRows);
  const RowMask m = RowMask::first_rows(70);
  EXPECT_TRUE(m.get(0));
  EXPECT_TRUE(m.get(69));
  EXPECT_FALSE(m.get(70));
}

TEST(Executor, ConstantRailsAfterInit) {
  MemoryBlock blk;
  BlockExecutor exec(blk, RowMask::all());
  for (std::size_t r = 0; r < kBlockRows; r += 73) {
    EXPECT_FALSE(blk.column(exec.zero_col()).get(r));
    EXPECT_TRUE(blk.column(exec.one_col()).get(r));
  }
  // Only the one-rail SET was charged.
  EXPECT_EQ(exec.stats().cycles, 1u);
}

TEST(Executor, GateSemanticsOverMask) {
  MemoryBlock blk;
  BlockExecutor exec(blk, RowMask::first_rows(4));
  const Col a = exec.alloc_col();
  const Col b = exec.alloc_col();
  const Col d = exec.alloc_col();
  // rows: a = 0,0,1,1 ; b = 0,1,0,1
  blk.column(a).set(2, true);
  blk.column(a).set(3, true);
  blk.column(b).set(1, true);
  blk.column(b).set(3, true);

  exec.gate2(GateKind::kNor, d, a, b);
  EXPECT_TRUE(blk.column(d).get(0));
  EXPECT_FALSE(blk.column(d).get(1));
  EXPECT_FALSE(blk.column(d).get(2));
  EXPECT_FALSE(blk.column(d).get(3));

  exec.gate2(GateKind::kXor2, d, a, b);
  EXPECT_FALSE(blk.column(d).get(0));
  EXPECT_TRUE(blk.column(d).get(1));
  EXPECT_TRUE(blk.column(d).get(2));
  EXPECT_FALSE(blk.column(d).get(3));

  // Inactive rows must be untouched.
  exec.gate1(GateKind::kNot, d, a);
  EXPECT_FALSE(blk.column(d).get(5));
}

TEST(Executor, InputPolarityFlags) {
  MemoryBlock blk;
  BlockExecutor exec(blk, RowMask::first_rows(2));
  const Col a = exec.alloc_col();
  const Col d = exec.alloc_col();
  blk.column(a).set(0, true);  // a = 1, 0
  exec.gate2(GateKind::kOr, d, a, exec.zero_col(), /*neg_a=*/true);
  EXPECT_FALSE(blk.column(d).get(0));
  EXPECT_TRUE(blk.column(d).get(1));
}

TEST(Executor, GateCycleCosts) {
  MemoryBlock blk;
  BlockExecutor exec(blk, RowMask::first_rows(8));
  exec.reset_stats();
  const Col a = exec.alloc_col();
  const Col d = exec.alloc_col();
  exec.gate1(GateKind::kNot, d, a);
  EXPECT_EQ(exec.stats().cycles, 1u);
  exec.gate2(GateKind::kXor2, d, a, a);
  EXPECT_EQ(exec.stats().cycles, 3u);
  exec.gate3(GateKind::kXor3, d, a, a, a);
  EXPECT_EQ(exec.stats().cycles, 6u);
  exec.gate3(GateKind::kMaj3, d, a, a, a);
  EXPECT_EQ(exec.stats().cycles, 8u);
  exec.gate3(GateKind::kMux, d, a, a, a);
  EXPECT_EQ(exec.stats().cycles, 11u);
  // Cell events scale with active rows.
  EXPECT_EQ(exec.stats().cell_events, 11u * 8u);
}

TEST(Executor, AllocateFreeRecycles) {
  MemoryBlock blk;
  BlockExecutor exec(blk, RowMask::all());
  const std::size_t before = exec.free_count();
  const Operand op = exec.alloc(32);
  EXPECT_EQ(exec.free_count(), before - 32);
  exec.free(op);
  EXPECT_EQ(exec.free_count(), before);
}

TEST(Executor, RefcountSharing) {
  MemoryBlock blk;
  BlockExecutor exec(blk, RowMask::all());
  const std::size_t before = exec.free_count();
  const Col c = exec.alloc_col();
  exec.retain_col(c);
  exec.free_col(c);
  EXPECT_EQ(exec.free_count(), before - 1);  // still held by second owner
  exec.free_col(c);
  EXPECT_EQ(exec.free_count(), before);
}

TEST(Executor, ReservedRegionIsStickyAndUnallocatable) {
  MemoryBlock blk;
  BlockExecutor exec(blk, RowMask::all());
  exec.reserve_region(100, 16);
  // free/retain on reserved columns are no-ops.
  exec.free_col(100);
  exec.retain_col(115);
  // Allocation never hands out reserved columns.
  std::vector<Col> got;
  for (int i = 0; i < 300; ++i) got.push_back(exec.alloc_col());
  for (Col c : got) {
    EXPECT_TRUE(c < 100 || c >= 116);
  }
}

TEST(MemoryBlock, HostApisThrowOnOutOfRangeEvenWithNdebug) {
  // write_number/read_number/inject_stuck_at/remap_column are
  // untrusted-input surfaces: they must bounds-check unconditionally, not
  // via assert(). The default build is RelWithDebInfo (NDEBUG defined),
  // so this test exercises exactly the Release-mode behaviour.
#ifndef NDEBUG
  GTEST_LOG_(INFO) << "assert() also active in this build";
#endif
  MemoryBlock blk;
  // Row out of range.
  EXPECT_THROW(blk.write_number(kBlockRows, 0, 8, 1), std::invalid_argument);
  EXPECT_THROW(blk.read_number(kBlockRows, 0, 8), std::invalid_argument);
  // Width walks past the last column.
  EXPECT_THROW(blk.write_number(0, kBlockCols - 4, 8, 1),
               std::invalid_argument);
  EXPECT_THROW(blk.read_number(0, kBlockCols - 4, 8), std::invalid_argument);
  // Zero-width operand.
  EXPECT_THROW(blk.write_number(0, 0, 0, 0), std::invalid_argument);
  // Fault injection and remap bounds.
  EXPECT_THROW(blk.inject_stuck_at(kBlockCols, 0, true),
               std::invalid_argument);
  EXPECT_THROW(blk.inject_stuck_at(0, kBlockRows, true),
               std::invalid_argument);
  EXPECT_THROW(blk.remap_column(kBlockCols, 0), std::invalid_argument);
  EXPECT_THROW(blk.remap_column(0, kBlockCols), std::invalid_argument);
  // The failed calls must not have corrupted the block.
  blk.write_number(0, 0, 8, 0xA5);
  EXPECT_EQ(blk.read_number(0, 0, 8), 0xA5u);
}

TEST(Executor, ExhaustionThrows) {
  MemoryBlock blk;
  BlockExecutor exec(blk, RowMask::all());
  EXPECT_THROW(
      {
        for (std::size_t i = 0; i <= kBlockCols; ++i) exec.alloc_col();
      },
      std::runtime_error);
}

TEST(Executor, HostIoRoundTrip) {
  MemoryBlock blk;
  BlockExecutor exec(blk, RowMask::first_rows(5));
  const Operand op = exec.alloc(16);
  const std::vector<std::uint64_t> vals = {1, 2, 3, 65535, 12345};
  exec.host_write(op, vals);
  EXPECT_EQ(exec.host_read(op), vals);
}

TEST(Executor, ShiftedViewMultipliesByPowerOfTwo) {
  MemoryBlock blk;
  BlockExecutor exec(blk, RowMask::first_rows(1));
  const Operand op = exec.alloc(8);
  exec.host_write(op, std::vector<std::uint64_t>{0x5A});
  const Operand sh = exec.shifted(op, 4);
  EXPECT_EQ(sh.width(), 12u);
  EXPECT_EQ(exec.host_read(sh)[0], 0x5A0u);
}

TEST(Executor, ConstantOperandIsRailAlias) {
  MemoryBlock blk;
  BlockExecutor exec(blk, RowMask::first_rows(3));
  exec.reset_stats();
  const Operand c = exec.constant(0b1011, 6);
  EXPECT_EQ(exec.stats().cycles, 0u);  // zero-cost
  const auto vals = exec.host_read(c);
  for (const auto v : vals) EXPECT_EQ(v, 0b1011u);
}

}  // namespace
}  // namespace cryptopim::pim
