// Algebraic property tests of the NTT stack: transform linearity, the
// shift (monomial) theorem, multiplicative structure of the ring, and
// cross-engine consistency — each property over randomized inputs and
// multiple parameter sets.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "ntt/modular.h"
#include "ntt/ntt.h"
#include "ntt/params.h"
#include "ntt/poly.h"
#include "ntt/word_ntt.h"

namespace cryptopim::ntt {
namespace {

class NttAlgebra : public ::testing::TestWithParam<std::uint32_t> {
 protected:
  void SetUp() override {
    params_ = NttParams::for_degree(GetParam());
    engine_ = std::make_unique<GsNttEngine>(params_);
    rng_ = std::make_unique<Xoshiro256>(GetParam() * 7 + 1);
  }
  Poly random_poly() { return sample_uniform(params_.n, params_.q, *rng_); }

  NttParams params_;
  std::unique_ptr<GsNttEngine> engine_;
  std::unique_ptr<Xoshiro256> rng_;
};

TEST_P(NttAlgebra, ForwardIsLinear) {
  const auto a = random_poly();
  const auto b = random_poly();
  const std::uint32_t k = static_cast<std::uint32_t>(rng_->next_below(params_.q));

  // NTT(a + k*b) == NTT(a) + k*NTT(b)
  Poly akb(params_.n);
  for (std::size_t i = 0; i < params_.n; ++i) {
    akb[i] = add_mod(a[i], mul_mod(k, b[i], params_.q), params_.q);
  }
  auto lhs = akb;
  engine_->forward(lhs);

  auto fa = a;
  auto fb = b;
  engine_->forward(fa);
  engine_->forward(fb);
  for (std::size_t i = 0; i < params_.n; ++i) {
    ASSERT_EQ(lhs[i],
              add_mod(fa[i], mul_mod(k, fb[i], params_.q), params_.q));
  }
}

TEST_P(NttAlgebra, MonomialShiftTheorem) {
  // a(x) * x^k rotates coefficients with a sign flip on wrap-around.
  const auto a = random_poly();
  const std::uint32_t k =
      static_cast<std::uint32_t>(rng_->next_below(params_.n - 1)) + 1;
  Poly xk(params_.n, 0);
  xk[k] = 1;
  const auto rotated = engine_->negacyclic_multiply(a, xk);
  for (std::size_t i = 0; i < params_.n; ++i) {
    const std::size_t src = (i + params_.n - k) % params_.n;
    const bool wrapped = i < k;
    const std::uint32_t expect =
        wrapped ? sub_mod(0, a[src], params_.q) : a[src];
    ASSERT_EQ(rotated[i], expect) << "i=" << i << " k=" << k;
  }
}

TEST_P(NttAlgebra, MultiplicationCommutes) {
  const auto a = random_poly();
  const auto b = random_poly();
  EXPECT_EQ(engine_->negacyclic_multiply(a, b),
            engine_->negacyclic_multiply(b, a));
}

TEST_P(NttAlgebra, MultiplicationAssociates) {
  const auto a = random_poly();
  const auto b = random_poly();
  const auto c = random_poly();
  EXPECT_EQ(
      engine_->negacyclic_multiply(engine_->negacyclic_multiply(a, b), c),
      engine_->negacyclic_multiply(a, engine_->negacyclic_multiply(b, c)));
}

TEST_P(NttAlgebra, ScalarsFactorOut) {
  const auto a = random_poly();
  const auto b = random_poly();
  const std::uint32_t k =
      static_cast<std::uint32_t>(rng_->next_below(params_.q - 1)) + 1;
  Poly ka(params_.n);
  for (std::size_t i = 0; i < params_.n; ++i) {
    ka[i] = mul_mod(k, a[i], params_.q);
  }
  const auto lhs = engine_->negacyclic_multiply(ka, b);
  auto rhs = engine_->negacyclic_multiply(a, b);
  for (auto& c : rhs) c = mul_mod(k, c, params_.q);
  EXPECT_EQ(lhs, rhs);
}

TEST_P(NttAlgebra, ForwardOfDeltaIsPsiTwist) {
  // NTT(delta_0) = (1,1,...,1) up to the psi pre-twist: delta_0 scaled by
  // psi^0 = 1, so the spectrum is all ones.
  Poly delta(params_.n, 0);
  delta[0] = 1;
  engine_->forward(delta);
  for (const auto v : delta) ASSERT_EQ(v, 1u);
}

TEST_P(NttAlgebra, PointwiseSquareMatchesSelfMultiply) {
  const auto a = random_poly();
  auto fa = a;
  engine_->forward(fa);
  for (auto& v : fa) v = mul_mod(v, v, params_.q);
  engine_->inverse(fa);
  EXPECT_EQ(fa, engine_->negacyclic_multiply(a, a));
}

INSTANTIATE_TEST_SUITE_P(Degrees, NttAlgebra,
                         ::testing::Values(16u, 256u, 512u, 2048u));

// ---------------------------------------------------------------------------
// Lazy-reduction invariants of the word-level engine
// ---------------------------------------------------------------------------
// The WordNttEngine keeps intermediates in the redundant [0, 2q) range
// through the whole transform and normalizes exactly once at the end.
// These properties pin the contract: no intermediate ever escapes 2q,
// the final normalize is canonical, and the lazy round trip is the
// identity (the n^{-1} scaling is folded into the inverse psi table, so
// forward ∘ inverse == id exactly, no residual scale factor).

class WordLazy : public ::testing::TestWithParam<std::uint32_t> {
 protected:
  void SetUp() override {
    params_ = NttParams::for_degree(GetParam());
    word_ = std::make_unique<WordNttEngine>(params_);
    gs_ = std::make_unique<GsNttEngine>(params_);
    rng_ = std::make_unique<Xoshiro256>(GetParam() * 31 + 7);
  }
  Poly random_poly() { return sample_uniform(params_.n, params_.q, *rng_); }

  /// Probe asserting the partial-domain invariant at every phase.
  WordNttEngine::StageProbe bound_probe(const char* where) {
    return [this, where](std::span<const std::uint32_t> a) {
      for (const auto v : a) {
        ASSERT_LT(v, word_->two_q()) << where << ": intermediate escaped 2q";
      }
    };
  }

  NttParams params_;
  std::unique_ptr<WordNttEngine> word_;
  std::unique_ptr<GsNttEngine> gs_;
  std::unique_ptr<Xoshiro256> rng_;
};

TEST_P(WordLazy, EveryIntermediateStaysBelowTwoQ) {
  for (int round = 0; round < 10; ++round) {
    auto a = random_poly();
    auto b = random_poly();
    word_->forward_lazy(a, bound_probe("forward"));
    word_->forward_lazy(b, bound_probe("forward"));
    word_->pointwise_lazy(a, b);
    for (const auto v : a) ASSERT_LT(v, word_->two_q()) << "pointwise";
    word_->inverse_lazy(a, bound_probe("inverse"));
  }
}

TEST_P(WordLazy, IntermediatesStayBoundedFromPartialDomainInputs) {
  // The forward transform must hold the invariant even when fed the
  // extreme of the redundant representation (all coefficients 2q-1).
  Poly a(params_.n, word_->two_q() - 1);
  word_->forward_lazy(a, bound_probe("forward[2q-1]"));
}

TEST_P(WordLazy, FinalNormalizeLandsCanonical) {
  for (int round = 0; round < 10; ++round) {
    auto a = random_poly();
    word_->forward_lazy(a);
    word_->inverse_lazy(a);
    word_->normalize(a);
    for (const auto v : a) ASSERT_LT(v, params_.q);
  }
  // The normalize pass itself: 2q-1 -> q-1, q -> 0, q-1 unchanged.
  Poly edge = {word_->two_q() - 1, params_.q, params_.q - 1, 0};
  word_->normalize(edge);
  EXPECT_EQ(edge, (Poly{params_.q - 1, 0, params_.q - 1, 0}));
}

TEST_P(WordLazy, ForwardInverseRoundTripIsIdentity) {
  // NTT ∘ INTT == identity; the ± n scaling of the raw transform pair
  // is already folded into psi_inv_scaled, so the round trip is exact.
  const auto orig = random_poly();
  auto a = orig;
  word_->forward_lazy(a);
  word_->inverse_lazy(a);
  word_->normalize(a);
  EXPECT_EQ(a, orig);
}

TEST_P(WordLazy, LazyForwardMatchesCanonicalEngine) {
  // Normalizing the lazy spectrum reproduces GsNttEngine::forward
  // value-for-value — same schedule, same twiddles, exact arithmetic.
  auto a = random_poly();
  auto ref = a;
  word_->forward_lazy(a);
  word_->normalize(a);
  gs_->forward(ref);
  EXPECT_EQ(a, ref);
}

TEST_P(WordLazy, NegacyclicProductMatchesCanonicalEngine) {
  const auto a = random_poly();
  const auto b = random_poly();
  EXPECT_EQ(word_->negacyclic_multiply(a, b), gs_->negacyclic_multiply(a, b));
}

// All supported (n, q) classes: the three paper moduli across their
// degree ranges, including the 32-bit datapath points.
INSTANTIATE_TEST_SUITE_P(Degrees, WordLazy,
                         ::testing::Values(16u, 256u, 512u, 1024u, 2048u,
                                           8192u));

TEST(WordLazyConstruction, RejectsOversizedModulus) {
  // q >= 2^30 would overflow the 32-bit lazy butterfly; the engine must
  // refuse rather than compute garbage.
  EXPECT_THROW(WordNttEngine(NttParams::make(4, 3221225473u)),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Sampler distributions
// ---------------------------------------------------------------------------

TEST(Samplers, UniformCoversRange) {
  Xoshiro256 rng(5);
  const auto p = sample_uniform(4096, 7681, rng);
  std::uint32_t lo = 7681, hi = 0;
  for (const auto c : p) {
    ASSERT_LT(c, 7681u);
    lo = std::min(lo, c);
    hi = std::max(hi, c);
  }
  EXPECT_LT(lo, 100u);    // both tails hit with overwhelming probability
  EXPECT_GT(hi, 7580u);
}

TEST(Samplers, CbdIsCenteredAndBounded) {
  Xoshiro256 rng(6);
  const unsigned eta = 3;
  const auto p = sample_cbd(8192, 12289, eta, rng);
  std::int64_t sum = 0;
  for (const auto c : p) {
    const auto v = centered(c, 12289);
    ASSERT_LE(std::llabs(v), static_cast<std::int64_t>(eta));
    sum += v;
  }
  // Mean ~0 with std ~ sqrt(n * eta/2): |sum| < 5 sigma.
  EXPECT_LT(std::llabs(sum), 5 * 110);
}

TEST(Samplers, TernaryValues) {
  Xoshiro256 rng(7);
  const auto p = sample_ternary(4096, 786433, rng);
  std::size_t counts[3] = {0, 0, 0};
  for (const auto c : p) {
    const auto v = centered(c, 786433);
    ASSERT_LE(std::llabs(v), 1);
    ++counts[v + 1];
  }
  // Roughly balanced thirds.
  for (const auto n : counts) {
    EXPECT_GT(n, 4096u / 3 - 200);
    EXPECT_LT(n, 4096u / 3 + 200);
  }
}

TEST(Centered, Bounds) {
  EXPECT_EQ(centered(0, 7681), 0);
  EXPECT_EQ(centered(1, 7681), 1);
  EXPECT_EQ(centered(7680, 7681), -1);
  EXPECT_EQ(centered(3840, 7681), 3840);   // q/2 floor stays positive
  EXPECT_EQ(centered(3841, 7681), -3840);  // first negative representative
}

}  // namespace
}  // namespace cryptopim::ntt
