// Tests for the chip-level scheduler (src/model/scheduler.*): the
// configurable architecture's superbank partitioning applied to streams of
// mixed-degree multiplications.
#include "model/scheduler.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace cryptopim::model {
namespace {

TEST(Scheduler, EmptyListIsEmptySchedule) {
  const ChipScheduler sched;
  const auto res = sched.schedule({});
  EXPECT_TRUE(res.batches.empty());
  EXPECT_EQ(res.makespan_us, 0.0);
  EXPECT_EQ(res.total_multiplications, 0u);
}

TEST(Scheduler, SingleJobCostsOneFill) {
  const ChipScheduler sched;
  const std::vector<Job> jobs = {{1024, 1}};
  const auto res = sched.schedule(jobs);
  ASSERT_EQ(res.batches.size(), 1u);
  const auto perf = cryptopim_pipelined(1024);
  EXPECT_DOUBLE_EQ(res.makespan_us, perf.latency_us);
  EXPECT_EQ(res.repartitions, 0u);
}

TEST(Scheduler, SteadyStateApproachesAggregateThroughput) {
  // A long stream of small multiplications should approach
  // superbanks * per-pipeline throughput.
  const ChipScheduler sched;
  const std::vector<Job> jobs = {{256, 1000000}};
  const auto res = sched.schedule(jobs);
  const auto perf = cryptopim_pipelined(256);
  const double ideal = perf.throughput_per_s * 64;  // 64 superbanks at 256
  EXPECT_GT(res.throughput_per_s, 0.95 * ideal);
  EXPECT_LE(res.throughput_per_s, ideal);
  EXPECT_GT(res.utilization, 0.9);
  EXPECT_LE(res.utilization, 1.0 + 1e-9);
}

TEST(Scheduler, FewJobsLeaveBanksIdle) {
  // 3 multiplications on a 64-superbank partition: utilization reflects
  // the 61 idle pipelines.
  const ChipScheduler sched;
  const std::vector<Job> jobs = {{256, 3}};
  const auto res = sched.schedule(jobs);
  EXPECT_LT(res.utilization, 0.1);
}

TEST(Scheduler, MixedDegreesRepartition) {
  const ChipScheduler sched;
  const std::vector<Job> jobs = {{256, 100}, {32768, 5}, {2048, 50}};
  const auto res = sched.schedule(jobs);
  ASSERT_EQ(res.batches.size(), 3u);
  // Largest degree scheduled first.
  EXPECT_EQ(res.batches[0].degree, 32768u);
  EXPECT_EQ(res.batches[2].degree, 256u);
  EXPECT_EQ(res.repartitions, 2u);
  EXPECT_EQ(res.total_multiplications, 155u);
  // Makespan is the sum of batch durations (sequential partitions).
  double sum = 0;
  for (const auto& b : res.batches) sum += b.duration_us;
  EXPECT_DOUBLE_EQ(res.makespan_us, sum);
}

TEST(Scheduler, DuplicateDegreesCoalesce) {
  const ChipScheduler sched;
  const std::vector<Job> jobs = {{512, 10}, {512, 20}, {512, 0}};
  const auto res = sched.schedule(jobs);
  ASSERT_EQ(res.batches.size(), 1u);
  EXPECT_EQ(res.batches[0].multiplications, 30u);
}

TEST(Scheduler, AboveDesignPointUsesSegments) {
  const ChipScheduler sched;
  const std::vector<Job> jobs = {{131072, 4}};  // 4 x 32k segments each
  const auto res = sched.schedule(jobs);
  ASSERT_EQ(res.batches.size(), 1u);
  EXPECT_EQ(res.batches[0].segments, 4u);
  // 4 jobs x 4 segments = 16 beats on a single superbank.
  const auto perf = cryptopim_pipelined(32768);
  const double expected =
      perf.latency_us + 15 * (1e6 / perf.throughput_per_s);
  EXPECT_NEAR(res.makespan_us, expected, 1e-6);
}

TEST(Scheduler, RepartitionOverheadCharged) {
  const ChipScheduler with_cost(arch::ChipConfig::paper_chip(),
                                /*repartition_us=*/5.0);
  const ChipScheduler free_cost;
  const std::vector<Job> jobs = {{256, 1}, {512, 1}, {1024, 1}};
  const auto a = with_cost.schedule(jobs);
  const auto b = free_cost.schedule(jobs);
  EXPECT_NEAR(a.makespan_us - b.makespan_us, 10.0, 1e-9);  // 2 repartitions
}

TEST(Scheduler, SparesHideFailuresFromTheSchedule) {
  // Failures within the spare pool leave the working set intact: the
  // schedule is identical to the healthy chip's.
  const ChipScheduler healthy;
  const ChipScheduler repaired(arch::ChipConfig::paper_chip(),
                               /*repartition_us=*/0.0, /*failed_banks=*/8);
  const std::vector<Job> jobs = {{256, 1000}, {4096, 20}};
  const auto a = healthy.schedule(jobs);
  const auto b = repaired.schedule(jobs);
  ASSERT_EQ(a.batches.size(), b.batches.size());
  EXPECT_DOUBLE_EQ(a.makespan_us, b.makespan_us);
  for (std::size_t i = 0; i < a.batches.size(); ++i) {
    EXPECT_EQ(a.batches[i].superbanks, b.batches[i].superbanks);
  }
}

TEST(Scheduler, DegradedChipLosesSuperbanksAndThroughput) {
  // 10 failures = 8 spares + 2 lost banks: at n=256 (2 banks/superbank)
  // one superbank disappears and a long stream takes longer.
  const ChipScheduler healthy;
  const ChipScheduler degraded(arch::ChipConfig::paper_chip(),
                               /*repartition_us=*/0.0, /*failed_banks=*/10);
  EXPECT_EQ(degraded.failed_banks(), 10u);
  const std::vector<Job> jobs = {{256, 100000}};
  const auto a = healthy.schedule(jobs);
  const auto b = degraded.schedule(jobs);
  ASSERT_EQ(b.batches.size(), 1u);
  EXPECT_EQ(a.batches[0].superbanks, 64u);
  EXPECT_EQ(b.batches[0].superbanks, 63u);
  EXPECT_GT(b.makespan_us, a.makespan_us);
  EXPECT_LT(b.throughput_per_s, a.throughput_per_s);
}

TEST(Scheduler, DegradedChipBeyondCapacityThrows) {
  // n=32768 needs all 128 banks for one superbank; losing any bank past
  // the spares makes the degree unschedulable.
  const ChipScheduler degraded(arch::ChipConfig::paper_chip(),
                               /*repartition_us=*/0.0, /*failed_banks=*/9);
  const std::vector<Job> jobs = {{32768, 1}};
  EXPECT_THROW((void)degraded.schedule(jobs), std::runtime_error);
  // Smaller degrees still schedule on the same degraded chip.
  const std::vector<Job> small = {{256, 10}};
  EXPECT_NO_THROW((void)degraded.schedule(small));
}

TEST(Scheduler, MoreJobsNeverShortenTheMakespan) {
  const ChipScheduler sched;
  double prev = 0;
  for (const std::uint64_t count : {1ull, 10ull, 100ull, 1000ull}) {
    const std::vector<Job> jobs = {{4096, count}};
    const auto res = sched.schedule(jobs);
    EXPECT_GE(res.makespan_us, prev);
    prev = res.makespan_us;
  }
}

}  // namespace
}  // namespace cryptopim::model
