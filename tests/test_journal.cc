// Durability subsystem tests (src/runtime/journal.*, snapshot.*, and the
// recovery path through ServingRuntime / FleetRuntime): CRC framing,
// torn-tail discipline, replay matching, snapshot round-trips, RNG
// digests, event-log streaming, and in-process crash/recover fidelity —
// including the --protocol x --fleet matrix (op-ledger conservation and
// exactly-once protocol teardown when a chip dies mid-DAG).
#include "runtime/journal.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "obs/crc32.h"
#include "obs/event_log.h"
#include "obs/json.h"
#include "runtime/fleet.h"
#include "runtime/protocol.h"
#include "runtime/protocol_ops.h"
#include "runtime/serving.h"
#include "runtime/snapshot.h"

namespace cryptopim::runtime {
namespace {

namespace fs = std::filesystem;

// Fresh per-test scratch directory (deterministic name, wiped first).
std::string scratch_dir(const std::string& name) {
  const std::string dir =
      (fs::temp_directory_path() / ("cryptopim_test_journal_" + name))
          .string();
  std::error_code ec;
  fs::remove_all(dir, ec);
  fs::create_directories(dir);
  return dir;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

void spit(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
}

ServingConfig small_config(std::uint64_t seed) {
  ServingConfig cfg;
  cfg.workload.mix = {{1024, 1.0}};
  cfg.workload.tenants = 2;
  cfg.workload.seed = seed;
  cfg.arrival_rate_per_s = 40000;
  cfg.duration_us = 2000;
  return cfg;
}

// ------------------------------------------------------------- crc32 --

TEST(Crc32, MatchesCheckValue) {
  // The canonical CRC-32/ISO-HDLC check value.
  EXPECT_EQ(obs::crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(obs::crc32(""), 0x00000000u);
  EXPECT_NE(obs::crc32("a"), obs::crc32("b"));
}

// ----------------------------------------------------- journal frame --

TEST(Journal, RoundTripsRecordsThroughLoad) {
  const std::string dir = scratch_dir("roundtrip");
  const std::string path = dir + "/journal.log";
  const std::string hdr = "{\"t\":\"hdr\",\"schema\":\"journal/1\"}";
  {
    Journal j;
    j.open(path, hdr, /*recover=*/false);
    j.record("{\"t\":\"admit\",\"i\":1}");
    j.record("{\"t\":\"out\",\"i\":2}");
    EXPECT_TRUE(j.active());
    EXPECT_EQ(j.appended(), 3u);
  }
  const auto r = Journal::load(path);
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_EQ(r.payloads.size(), 3u);
  EXPECT_EQ(r.payloads[0], hdr);
  EXPECT_EQ(r.payloads[2], "{\"t\":\"out\",\"i\":2}");
  EXPECT_FALSE(r.torn_tail);
  EXPECT_FALSE(r.sealed);
}

TEST(Journal, MissingFileLoadsEmpty) {
  const auto r = Journal::load(scratch_dir("missing") + "/nope.log");
  EXPECT_TRUE(r.ok);
  EXPECT_TRUE(r.payloads.empty());
}

TEST(Journal, TornTailIsDroppedButMidFileCorruptionIsFatal) {
  const std::string dir = scratch_dir("torn");
  const std::string path = dir + "/journal.log";
  {
    Journal j;
    j.open(path, "{\"t\":\"hdr\"}", false);
    j.record("{\"t\":\"admit\",\"i\":1}");
    j.record("{\"t\":\"out\",\"i\":2}");
  }
  const std::string full = slurp(path);
  // Chop mid-record: the final line loses its newline and some bytes.
  spit(path, full.substr(0, full.size() - 9));
  auto r = Journal::load(path);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.torn_tail);
  EXPECT_EQ(r.payloads.size(), 2u);

  // Corrupt the *middle* record instead: valid lines follow, so this is
  // not a torn tail and the load must fail.
  std::string bad = full;
  bad[full.find("admit") + 1] ^= 0x20;
  spit(path, bad);
  r = Journal::load(path);
  EXPECT_FALSE(r.ok);
}

TEST(Journal, ReplayMatchesThenAppends) {
  const std::string dir = scratch_dir("replay");
  const std::string path = dir + "/journal.log";
  const std::string hdr = "{\"t\":\"hdr\"}";
  {
    Journal j;
    j.open(path, hdr, false);
    j.record("{\"t\":\"admit\",\"i\":1}");
  }
  Journal j;
  j.open(path, hdr, /*recover=*/true);
  EXPECT_TRUE(j.replaying());
  j.record("{\"t\":\"admit\",\"i\":1}");  // matches the journaled record
  EXPECT_FALSE(j.replaying());
  EXPECT_EQ(j.matched(), 2u);  // header + admit
  j.record("{\"t\":\"out\",\"i\":2}");  // past the prefix: appended live
  EXPECT_EQ(j.appended(), 1u);
  const auto r = Journal::load(path);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.payloads.size(), 3u);
}

TEST(Journal, ReplayDivergenceThrows) {
  const std::string dir = scratch_dir("diverge");
  const std::string path = dir + "/journal.log";
  const std::string hdr = "{\"t\":\"hdr\"}";
  {
    Journal j;
    j.open(path, hdr, false);
    j.record("{\"t\":\"admit\",\"i\":1}");
  }
  Journal j;
  j.open(path, hdr, true);
  EXPECT_THROW(j.record("{\"t\":\"admit\",\"i\":99}"), std::runtime_error);
}

TEST(Journal, RecoverRejectsHeaderMismatch) {
  const std::string dir = scratch_dir("hdrmismatch");
  const std::string path = dir + "/journal.log";
  {
    Journal j;
    j.open(path, "{\"t\":\"hdr\",\"config\":\"aaaaaaaa\"}", false);
  }
  Journal j;
  EXPECT_THROW(j.open(path, "{\"t\":\"hdr\",\"config\":\"bbbbbbbb\"}", true),
               std::runtime_error);
}

// ---------------------------------------------------------- snapshot --

TEST(Snapshot, WritesLoadsAndValidates) {
  const std::string dir = scratch_dir("snap");
  obs::Json state = obs::Json::object();
  state.set("cycle", std::uint64_t{12345});
  state.set("note", "hello");
  std::uint32_t crc = 0;
  const std::string file = write_snapshot(dir, 42, state, &crc);
  EXPECT_EQ(file, "snap-42.json");

  const auto loaded = load_snapshot(dir + "/" + file);
  ASSERT_TRUE(loaded.ok) << loaded.error;
  EXPECT_EQ(loaded.index, 42u);
  EXPECT_EQ(loaded.crc, crc);
  EXPECT_TRUE(snapshot_state_matches(loaded.state, crc));
  EXPECT_EQ(loaded.state.at("cycle").as_u64(), 12345u);

  // Highest-index scan.
  write_snapshot(dir, 7, state, nullptr);
  const auto latest = load_latest_snapshot(dir);
  ASSERT_TRUE(latest.ok);
  EXPECT_EQ(latest.index, 42u);

  // Corrupted state must be detected by the CRC cross-check (the load
  // itself only validates framing; the CRC catches content drift).
  std::string text = slurp(dir + "/" + file);
  text[text.find("12345")] = '9';
  spit(dir + "/" + file, text);
  const auto bad = load_snapshot(dir + "/" + file);
  ASSERT_TRUE(bad.ok) << bad.error;
  EXPECT_FALSE(snapshot_state_matches(bad.state, bad.crc));
}

// -------------------------------------------------------- rng digest --

TEST(RngDigest, NonAdvancingAndPositionSensitive) {
  Xoshiro256 a(7), b(7);
  EXPECT_EQ(a.digest(), b.digest());
  const std::uint64_t before = a.digest();
  EXPECT_EQ(a.digest(), before);  // digest() must not advance the stream
  a.next();
  EXPECT_NE(a.digest(), before);
  b.next();
  EXPECT_EQ(a.digest(), b.digest());  // same prefix -> same digest
  EXPECT_NE(Xoshiro256(8).digest(), before);
}

// ------------------------------------------------ event log streaming --

TEST(EventLogStream, StreamedFileMirrorsBufferedRecords) {
  const std::string dir = scratch_dir("elog");
  const std::string path = dir + "/events.jsonl";
  obs::EventLog log;
  log.open_stream(path, /*line_buffered=*/false);
  EXPECT_TRUE(log.streaming());
  obs::Json traced = obs::Json::object();
  traced.set("ev", "dispatched");
  traced.set("trace", std::uint64_t{1});
  obs::Json control = obs::Json::object();
  control.set("ev", "bank_failure");
  log.log(traced);
  log.log(control);  // control record: flushed immediately
  // The control record must already be on disk, pre-close: that is the
  // crash-durability contract for cluster-transition records.
  {
    std::istringstream in(slurp(path));
    std::string line;
    std::vector<std::string> lines;
    while (std::getline(in, line)) lines.push_back(line);
    ASSERT_GE(lines.size(), 1u);
    EXPECT_NE(slurp(path).find("bank_failure"), std::string::npos);
  }
  log.close_stream();
  // Streamed file = streamed header + exactly the buffered records.
  std::istringstream in(slurp(path));
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 1 + log.records().size());
  EXPECT_NE(lines[0].find("\"streamed\":true"), std::string::npos);
  for (std::size_t i = 0; i < log.records().size(); ++i) {
    EXPECT_EQ(lines[i + 1], log.records()[i].dump());
  }
}

TEST(EventLogStream, LineBufferedFlushesEveryRecord) {
  const std::string dir = scratch_dir("elogline");
  const std::string path = dir + "/events.jsonl";
  obs::EventLog log;
  log.open_stream(path, /*line_buffered=*/true);
  obs::Json traced = obs::Json::object();
  traced.set("ev", "dispatched");
  traced.set("trace", std::uint64_t{9});
  log.log(traced);
  // No close, no explicit flush: the record must still be on disk.
  EXPECT_NE(slurp(path).find("dispatched"), std::string::npos);
}

// ------------------------------------------- in-process crash/recover --

// Truncates the journal to its first `keep` complete records.
void truncate_records(const std::string& path, std::uint64_t keep) {
  const std::string text = slurp(path);
  std::uint64_t lines = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] != '\n') continue;
    if (++lines == keep) {
      fs::resize_file(path, i + 1);
      return;
    }
  }
}

TEST(Recovery, TruncatedJournalReplaysToIdenticalReport) {
  const std::string dir = scratch_dir("recover");
  DurabilityOptions durab;
  durab.dir = dir;
  durab.snapshot_every = 128;

  ServingRuntime full(small_config(11));
  full.enable_durability(durab);
  const ServingReport want = full.run();
  const std::string want_journal = slurp(dir + "/journal.log");

  // Synthetic crash: drop the back half of the journal, then recover.
  std::uint64_t lines = 0;
  for (char c : want_journal)
    if (c == '\n') ++lines;
  ASSERT_GT(lines, 4u);
  truncate_records(dir + "/journal.log", lines / 2);

  durab.recover = true;
  ServingRuntime again(small_config(11));
  again.enable_durability(durab);
  const ServingReport got = again.run();

  EXPECT_EQ(got.submitted, want.submitted);
  EXPECT_EQ(got.completed, want.completed);
  EXPECT_EQ(got.rejected, want.rejected);
  EXPECT_EQ(got.throughput_per_s, want.throughput_per_s);
  // The recovered journal converges byte-identically to the
  // uninterrupted run's (same flags -> same records, same snap cadence).
  EXPECT_EQ(slurp(dir + "/journal.log"), want_journal);
}

TEST(Recovery, SealedJournalReplaysWithoutAppending) {
  const std::string dir = scratch_dir("sealed");
  DurabilityOptions durab;
  durab.dir = dir;
  ServingRuntime full(small_config(3));
  full.enable_durability(durab);
  full.run();
  const std::string want_journal = slurp(dir + "/journal.log");

  durab.recover = true;
  ServingRuntime again(small_config(3));
  again.enable_durability(durab);
  again.run();
  EXPECT_EQ(slurp(dir + "/journal.log"), want_journal);
}

// ------------------------------------- protocol x fleet matrix (S3) --

FleetConfig proto_fleet_config(ProtocolKind kind, std::uint64_t seed) {
  FleetConfig fc;
  fc.chips = 3;
  fc.replicas = 2;
  fc.chip.protocol.kind = kind;
  fc.chip.protocol.shares = 3;
  fc.chip.workload.mix = {
      {kind == ProtocolKind::kKem ? kKemDegree : kBgvDegree, 1.0}};
  fc.chip.workload.tenants = 4;
  fc.chip.workload.seed = seed;
  fc.chip.workload.verify_every = 32;
  fc.chip.arrival_rate_per_s = 20000;
  fc.chip.duration_us = 1500;
  return fc;
}

// Every protocol kind, served by a fleet with a chip dying mid-DAG:
// the fleet request ledger must stay conserved and each chip's op
// ledger must close through the cancelled-by-teardown counter.
class ProtocolFleetMatrix : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(ProtocolFleetMatrix, OpLedgerConservesThroughChipKill) {
  FleetConfig fc = proto_fleet_config(GetParam(), 17);
  fc.kill_chip_at_us = 500.0;
  fc.kill_chip = 1;
  const auto rep = FleetRuntime(std::move(fc)).run();
  EXPECT_EQ(rep.crashes, 1u);
  EXPECT_GT(rep.completed, 0u);
  // Fleet request ledger: every submitted request gets exactly one fate.
  EXPECT_EQ(rep.submitted, rep.completed + rep.rejected + rep.shed +
                               rep.timed_out + rep.failed + rep.queued);
  for (const auto& c : rep.chip_reports) {
    // Chip op ledger: admission side...
    EXPECT_EQ(c.submitted,
              c.admitted + c.rejected + c.rejected_unservable +
                  c.resilience.rejected_deadline)
        << "chip " << c.chip_id;
    // ...and every admitted op reaches one terminal fate, counting ops
    // cancelled by exactly-once protocol teardown (chip death tears the
    // whole DAG down at most once per protocol request).
    EXPECT_EQ(c.admitted, c.completed + c.resilience.shed +
                              c.resilience.timed_out +
                              c.resilience.failed + c.queued +
                              c.in_flight + c.protocol.ops_cancelled +
                              c.chip_failed + c.migrated + c.lost_in_flight)
        << "chip " << c.chip_id;
    EXPECT_EQ(c.protocol.join_mismatches, 0u) << "chip " << c.chip_id;
  }
}

// The same matrix under durability: the journaled fleet run must admit
// every request exactly once (no duplicate ids in any chip journal) and
// recover byte-identically after losing the journal tail.
TEST_P(ProtocolFleetMatrix, JournaledRunRecoversByteIdentically) {
  const std::string dir =
      scratch_dir(std::string("pf_") + protocol_name(GetParam()));
  DurabilityOptions durab;
  durab.dir = dir;

  FleetConfig fc = proto_fleet_config(GetParam(), 21);
  fc.kill_chip_at_us = 400.0;
  fc.kill_chip = 2;
  FleetRuntime fleet(std::move(fc));
  fleet.enable_durability(durab);
  fleet.run();

  std::vector<std::string> files = {"fleet.log", "chip-0.log", "chip-1.log",
                                    "chip-2.log"};
  std::map<std::string, std::string> want;
  for (const auto& f : files) {
    want[f] = slurp(dir + "/" + f);
    ASSERT_FALSE(want[f].empty()) << f;
  }

  // Exactly-once admission: no chip journal may admit the same op id
  // twice (dedup across re-dispatch is per chip; a cross-chip retry is
  // a *new* admission on the other chip by design).
  for (const auto& f : files) {
    std::set<std::string> ids;
    std::istringstream in(want[f]);
    std::string line;
    while (std::getline(in, line)) {
      if (line.find("\"t\":\"admit\"") == std::string::npos) continue;
      const std::size_t at = line.find("\"id\":");
      ASSERT_NE(at, std::string::npos);
      const std::string id = line.substr(at, line.find(',', at) - at);
      EXPECT_TRUE(ids.insert(id).second) << f << " duplicate " << id;
    }
  }

  // Crash: drop the tail of the fleet journal, then recover; every
  // journal file must converge back to the uninterrupted bytes.
  std::uint64_t lines = 0;
  for (char c : want["fleet.log"])
    if (c == '\n') ++lines;
  ASSERT_GT(lines, 4u);
  truncate_records(dir + "/fleet.log", lines / 2);

  durab.recover = true;
  FleetConfig fc2 = proto_fleet_config(GetParam(), 21);
  fc2.kill_chip_at_us = 400.0;
  fc2.kill_chip = 2;
  FleetRuntime again(std::move(fc2));
  again.enable_durability(durab);
  again.run();
  for (const auto& f : files) {
    EXPECT_EQ(slurp(dir + "/" + f), want[f]) << f;
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, ProtocolFleetMatrix,
                         ::testing::Values(ProtocolKind::kKem,
                                           ProtocolKind::kBgvMul,
                                           ProtocolKind::kThreshold),
                         [](const auto& info) {
                           std::string n = protocol_name(info.param);
                           for (char& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });

}  // namespace
}  // namespace cryptopim::runtime
