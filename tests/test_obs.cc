// Tests for the observability layer (src/obs): JSON round-trips, trace
// nesting and Chrome-trace export, metrics snapshots, BenchReporter
// files, and the integration invariant that the pipeline-track spans of a
// simulated multiplication sum exactly to the reported wall cycles.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/rng.h"
#include "ntt/poly.h"
#include "obs/bench_report.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/simulator.h"

namespace cryptopim::obs {
namespace {

// ---------------------------------------------------------------- JSON --

TEST(Json, DumpAndParseRoundTrip) {
  Json doc = Json::object();
  doc.set("schema", 1);
  doc.set("name", "bench \"quoted\"\n");
  doc.set("pi", 3.25);
  doc.set("flag", true);
  doc.set("nothing", Json());
  Json arr = Json::array();
  arr.push_back(std::uint64_t{1} << 40);
  arr.push_back(-7);
  doc.set("values", std::move(arr));

  const auto r = parse_json(doc.dump());
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.value, doc);
  // Large integers print without a fractional part.
  EXPECT_NE(doc.dump().find("1099511627776"), std::string::npos);
}

TEST(Json, ParserRejectsMalformedInput) {
  EXPECT_FALSE(parse_json("").ok);
  EXPECT_FALSE(parse_json("{\"a\":1,}").ok);
  EXPECT_FALSE(parse_json("[1, 2] trailing").ok);
  EXPECT_FALSE(parse_json("\"bad \\x escape\"").ok);
  EXPECT_FALSE(parse_json("{\"a\" 1}").ok);
  EXPECT_TRUE(parse_json("  {\"a\": [true, null, 1e3]}  ").ok);
}

TEST(Json, ObjectPreservesInsertionOrder) {
  Json doc = Json::object();
  doc.set("zebra", 1);
  doc.set("alpha", 2);
  doc.set("zebra", 3);  // replace keeps first-insertion position
  ASSERT_EQ(doc.members().size(), 2u);
  EXPECT_EQ(doc.members()[0].first, "zebra");
  EXPECT_EQ(doc.members()[0].second.as_u64(), 3u);
  EXPECT_EQ(doc.members()[1].first, "alpha");
}

// --------------------------------------------------------------- Tracer --

TEST(Tracer, NestedSpansCloseInnermostFirst) {
  Tracer t;
  t.set_enabled(true);
  t.begin(0, "outer", "stage", 0);
  t.begin(0, "inner", "circuit", 10);
  EXPECT_EQ(t.open_span_count(), 2u);
  t.end(0, 40);   // closes "inner"
  t.end(0, 100);  // closes "outer"
  EXPECT_EQ(t.open_span_count(), 0u);

  ASSERT_EQ(t.events().size(), 2u);
  EXPECT_EQ(t.events()[0].name, "inner");
  EXPECT_EQ(t.events()[0].begin, 10u);
  EXPECT_EQ(t.events()[0].dur, 30u);
  EXPECT_EQ(t.events()[1].name, "outer");
  EXPECT_EQ(t.events()[1].dur, 100u);
  // Unbalanced end() is ignored, not fatal.
  t.end(0, 200);
  EXPECT_EQ(t.events().size(), 2u);
}

TEST(Tracer, DisabledTracerRecordsNothing) {
  Tracer t;
  ASSERT_FALSE(t.enabled());
  t.begin(1, "span", "stage", 0);
  t.end(1, 50);
  t.emit(1, "direct", "stage", 0, 5);
  EXPECT_TRUE(t.events().empty());
  EXPECT_EQ(t.open_span_count(), 0u);
}

TEST(Tracer, ChromeTraceExportIsValidJson) {
  Tracer t;
  t.set_enabled(true);
  t.set_track_name(3, "bank 3 (A)");
  t.emit(3, "butterfly/s4", "stage", 100, 250);

  std::ostringstream os;
  t.write_chrome_trace(os);
  const auto r = parse_json(os.str());
  ASSERT_TRUE(r.ok) << r.error;
  const auto& events = r.value.at("traceEvents");
  ASSERT_TRUE(events.is_array());

  bool saw_meta = false, saw_span = false;
  for (const auto& e : events.items()) {
    const auto& ph = e.at("ph").as_string();
    if (ph == "M") {
      saw_meta = e.at("name").as_string() == "thread_name" &&
                 e.at("args").at("name").as_string() == "bank 3 (A)";
    } else if (ph == "X") {
      saw_span = true;
      EXPECT_EQ(e.at("name").as_string(), "butterfly/s4");
      EXPECT_EQ(e.at("ts").as_u64(), 100u);
      EXPECT_EQ(e.at("dur").as_u64(), 250u);
      EXPECT_EQ(e.at("tid").as_u64(), 3u);
    }
  }
  EXPECT_TRUE(saw_meta);
  EXPECT_TRUE(saw_span);
}

// -------------------------------------------------------------- Metrics --

TEST(Metrics, SnapshotRoundTripsThroughJsonText) {
  MetricsRegistry reg;
  reg.counter("cryptopim.test.cycles", "cycles").add(12345);
  reg.counter("cryptopim.test.ops", "ops").add(7);
  auto& h = reg.histogram("cryptopim.test.latency", "cycles");
  for (const std::uint64_t v : {0u, 1u, 5u, 5u, 900u}) h.add(v);

  const Json snap = reg.snapshot();
  const auto parsed = parse_json(snap.dump());
  ASSERT_TRUE(parsed.ok) << parsed.error;
  const auto restored = MetricsRegistry::from_snapshot(parsed.value);
  EXPECT_EQ(restored.snapshot(), snap);

  EXPECT_EQ(restored.counters().at("cryptopim.test.cycles").value(), 12345u);
  const auto& rh = restored.histograms().at("cryptopim.test.latency");
  EXPECT_EQ(rh.count(), 5u);
  EXPECT_EQ(rh.sum(), 911u);
  EXPECT_EQ(rh.min(), 0u);
  EXPECT_EQ(rh.max(), 900u);
}

TEST(Metrics, HistogramBucketsArePowersOfTwo) {
  MetricsRegistry reg;
  auto& hist = reg.histogram("h");
  hist.add(0);  // bucket 0
  hist.add(1);  // bucket 1: [1, 2)
  hist.add(6);  // bucket 3: [4, 8)
  hist.add(7);
  EXPECT_EQ(hist.bucket(0), 1u);
  EXPECT_EQ(hist.bucket(1), 1u);
  EXPECT_EQ(hist.bucket(3), 2u);
  EXPECT_EQ(hist.mean(), 3.5);
}

TEST(Metrics, HistogramQuantileWalksBuckets) {
  MetricsRegistry reg;
  auto& hist = reg.histogram("h");
  EXPECT_EQ(hist.quantile(0.5), 0u);  // empty
  // 90 fast samples and 10 slow outliers: the p50 sits in the fast
  // bucket, the p99 in the slow one. Bucket resolution is a factor of
  // two, so compare against bucket edges, not exact sample values.
  for (int i = 0; i < 90; ++i) hist.add(10);   // bucket [8, 16)
  for (int i = 0; i < 10; ++i) hist.add(900);  // bucket [512, 1024)
  EXPECT_EQ(hist.quantile(0.50), 15u);   // upper edge of [8, 16)
  EXPECT_EQ(hist.quantile(0.90), 15u);
  EXPECT_EQ(hist.quantile(0.99), 900u);  // clamped to max
  EXPECT_EQ(hist.quantile(0.0), 10u);    // min
  EXPECT_EQ(hist.quantile(1.0), 900u);   // max
}

TEST(Metrics, HistogramEmptyIsAllZeros) {
  // The documented empty-histogram contract: every accessor returns 0,
  // every quantile (including the p=0 and p=1 extremes) returns 0, and
  // the mean does not divide by zero. Serving reports lean on this when
  // a run completes nothing.
  MetricsRegistry reg;
  auto& hist = reg.histogram("h");
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_EQ(hist.sum(), 0u);
  EXPECT_EQ(hist.min(), 0u);
  EXPECT_EQ(hist.max(), 0u);
  EXPECT_EQ(hist.mean(), 0.0);
  EXPECT_EQ(hist.quantile(0.0), 0u);
  EXPECT_EQ(hist.quantile(0.5), 0u);
  EXPECT_EQ(hist.quantile(1.0), 0u);
}

TEST(Metrics, HistogramFullQuantileIsExactMax) {
  // p >= 1 must return the exact maximum (not a pow2 bucket edge), and
  // p beyond 1 clamps rather than reading past the last bucket.
  MetricsRegistry reg;
  auto& hist = reg.histogram("h");
  hist.add(3);
  hist.add(1000);  // bucket [512, 1024), well below its upper edge
  EXPECT_EQ(hist.quantile(1.0), 1000u);
  EXPECT_EQ(hist.quantile(2.0), 1000u);
  EXPECT_EQ(hist.quantile(-0.5), 3u);  // p <= 0: the exact minimum
}

TEST(Metrics, HistogramSumFeedsMeanReporting) {
  // sum() is the accessor the CLI's mean-latency line is built from:
  // mean() == sum()/count() exactly, with no bucket quantisation.
  MetricsRegistry reg;
  auto& hist = reg.histogram("h");
  hist.add(7);
  hist.add(9);
  hist.add(20);
  EXPECT_EQ(hist.sum(), 36u);
  EXPECT_DOUBLE_EQ(hist.mean(), 12.0);
}

TEST(Metrics, HistogramQuantileClampsToObservedRange) {
  MetricsRegistry reg;
  auto& hist = reg.histogram("h");
  hist.add(100);
  // One sample: every quantile is that sample (min == max clamps the
  // bucket edge from both sides).
  EXPECT_EQ(hist.quantile(0.5), 100u);
  EXPECT_EQ(hist.quantile(0.999), 100u);
  hist.add(0);
  EXPECT_EQ(hist.quantile(0.25), 0u);  // rank 1 of 2 lands on the zero
}

// -------------------------------------------------------- BenchReporter --

TEST(BenchReporter, WritesParseableSchema) {
  BenchReporter rep("unit_test");
  rep.set_param("trials", "3");
  rep.add("latency", 12.5, "us", {{"n", "256"}});
  rep.add("throughput", 1e6, "1/s");
  EXPECT_EQ(rep.metric_count(), 2u);

  const std::string path = ::testing::TempDir() + "/bench_unit_test.json";
  ASSERT_TRUE(rep.write(path));
  std::ifstream is(path);
  std::stringstream buf;
  buf << is.rdbuf();
  const auto r = parse_json(buf.str());
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.value.at("bench").as_string(), "unit_test");
  EXPECT_EQ(r.value.at("schema").as_u64(), 1u);
  EXPECT_EQ(r.value.at("params").at("trials").as_string(), "3");
  const auto& metrics = r.value.at("metrics");
  ASSERT_EQ(metrics.size(), 2u);
  EXPECT_EQ(metrics[0].at("name").as_string(), "latency");
  EXPECT_EQ(metrics[0].at("params").at("n").as_string(), "256");
  std::remove(path.c_str());
}

// -------------------------------------------------- simulator integration --

#if CRYPTOPIM_TRACING

TEST(TraceIntegration, PipelineSpansSumToWallCycles) {
  const auto p = ntt::NttParams::for_degree(256);
  sim::CryptoPimSimulator simu(p);
  Tracer local;
  local.set_enabled(true);
  MetricsRegistry reg;
  simu.set_tracer(&local);
  simu.set_metrics(&reg);

  Xoshiro256 rng(11);
  const auto a = ntt::sample_uniform(p.n, p.q, rng);
  const auto b = ntt::sample_uniform(p.n, p.q, rng);
  simu.multiply(a, b);
  const auto& rep = simu.report();

  std::uint64_t pipeline_sum = 0, pipeline_spans = 0;
  for (const auto& e : local.events()) {
    if (e.track == sim::CryptoPimSimulator::kPipelineTrack) {
      pipeline_sum += e.dur;
      ++pipeline_spans;
    }
  }
  EXPECT_EQ(pipeline_spans, rep.stage_cycles.size());
  EXPECT_EQ(pipeline_sum, rep.wall_cycles);

  // Per-bank and softbank tracks both carried events.
  bool saw_bank = false, saw_softbank = false, saw_circuit = false;
  for (const auto& e : local.events()) {
    saw_bank |= e.track < sim::CryptoPimSimulator::kSoftbankTrackBase;
    saw_softbank |=
        e.track >= sim::CryptoPimSimulator::kSoftbankTrackBase &&
        e.track < sim::CryptoPimSimulator::kPipelineTrack;
    saw_circuit |= e.cat == "circuit";
  }
  EXPECT_TRUE(saw_bank);
  EXPECT_TRUE(saw_softbank);
  EXPECT_TRUE(saw_circuit);

  // Metrics mirrored the stage ledger.
  EXPECT_EQ(reg.counters().at("cryptopim.sim.wall_cycles").value(),
            rep.wall_cycles);
  EXPECT_GT(reg.counters().at("cryptopim.exec.cycles").value(), 0u);
}

TEST(TraceIntegration, DisabledCustomTracerStaysEmpty) {
  const auto p = ntt::NttParams::for_degree(64);
  sim::CryptoPimSimulator simu(p);
  Tracer local;  // never enabled
  simu.set_tracer(&local);
  Xoshiro256 rng(5);
  const auto a = ntt::sample_uniform(p.n, p.q, rng);
  const auto b = ntt::sample_uniform(p.n, p.q, rng);
  simu.multiply(a, b);
  EXPECT_TRUE(local.events().empty());
}

#endif  // CRYPTOPIM_TRACING

}  // namespace
}  // namespace cryptopim::obs
