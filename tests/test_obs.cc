// Tests for the observability layer (src/obs): JSON round-trips, trace
// nesting and Chrome-trace export, metrics snapshots, BenchReporter
// files, windowed time series, SLO accounting, the request-lifecycle
// event log, and two integration invariants: pipeline-track spans of a
// simulated multiplication sum exactly to the reported wall cycles, and
// a chaos serving run emits deterministic, causally-consistent
// observability output (Σ per-window counts == cumulative counters).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include "common/rng.h"
#include "ntt/poly.h"
#include "obs/bench_report.h"
#include "obs/event_log.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "runtime/serving.h"
#include "sim/simulator.h"

namespace cryptopim::obs {
namespace {

// ---------------------------------------------------------------- JSON --

TEST(Json, DumpAndParseRoundTrip) {
  Json doc = Json::object();
  doc.set("schema", 1);
  doc.set("name", "bench \"quoted\"\n");
  doc.set("pi", 3.25);
  doc.set("flag", true);
  doc.set("nothing", Json());
  Json arr = Json::array();
  arr.push_back(std::uint64_t{1} << 40);
  arr.push_back(-7);
  doc.set("values", std::move(arr));

  const auto r = parse_json(doc.dump());
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.value, doc);
  // Large integers print without a fractional part.
  EXPECT_NE(doc.dump().find("1099511627776"), std::string::npos);
}

TEST(Json, ParserRejectsMalformedInput) {
  EXPECT_FALSE(parse_json("").ok);
  EXPECT_FALSE(parse_json("{\"a\":1,}").ok);
  EXPECT_FALSE(parse_json("[1, 2] trailing").ok);
  EXPECT_FALSE(parse_json("\"bad \\x escape\"").ok);
  EXPECT_FALSE(parse_json("{\"a\" 1}").ok);
  EXPECT_TRUE(parse_json("  {\"a\": [true, null, 1e3]}  ").ok);
}

TEST(Json, ObjectPreservesInsertionOrder) {
  Json doc = Json::object();
  doc.set("zebra", 1);
  doc.set("alpha", 2);
  doc.set("zebra", 3);  // replace keeps first-insertion position
  ASSERT_EQ(doc.members().size(), 2u);
  EXPECT_EQ(doc.members()[0].first, "zebra");
  EXPECT_EQ(doc.members()[0].second.as_u64(), 3u);
  EXPECT_EQ(doc.members()[1].first, "alpha");
}

// --------------------------------------------------------------- Tracer --

TEST(Tracer, NestedSpansCloseInnermostFirst) {
  Tracer t;
  t.set_enabled(true);
  t.begin(0, "outer", "stage", 0);
  t.begin(0, "inner", "circuit", 10);
  EXPECT_EQ(t.open_span_count(), 2u);
  t.end(0, 40);   // closes "inner"
  t.end(0, 100);  // closes "outer"
  EXPECT_EQ(t.open_span_count(), 0u);

  ASSERT_EQ(t.events().size(), 2u);
  EXPECT_EQ(t.events()[0].name, "inner");
  EXPECT_EQ(t.events()[0].begin, 10u);
  EXPECT_EQ(t.events()[0].dur, 30u);
  EXPECT_EQ(t.events()[1].name, "outer");
  EXPECT_EQ(t.events()[1].dur, 100u);
  // Unbalanced end() is ignored, not fatal.
  t.end(0, 200);
  EXPECT_EQ(t.events().size(), 2u);
}

TEST(Tracer, DisabledTracerRecordsNothing) {
  Tracer t;
  ASSERT_FALSE(t.enabled());
  t.begin(1, "span", "stage", 0);
  t.end(1, 50);
  t.emit(1, "direct", "stage", 0, 5);
  EXPECT_TRUE(t.events().empty());
  EXPECT_EQ(t.open_span_count(), 0u);
}

TEST(Tracer, ChromeTraceExportIsValidJson) {
  Tracer t;
  t.set_enabled(true);
  t.set_track_name(3, "bank 3 (A)");
  t.emit(3, "butterfly/s4", "stage", 100, 250);

  std::ostringstream os;
  t.write_chrome_trace(os);
  const auto r = parse_json(os.str());
  ASSERT_TRUE(r.ok) << r.error;
  const auto& events = r.value.at("traceEvents");
  ASSERT_TRUE(events.is_array());

  bool saw_meta = false, saw_span = false;
  for (const auto& e : events.items()) {
    const auto& ph = e.at("ph").as_string();
    if (ph == "M") {
      saw_meta = e.at("name").as_string() == "thread_name" &&
                 e.at("args").at("name").as_string() == "bank 3 (A)";
    } else if (ph == "X") {
      saw_span = true;
      EXPECT_EQ(e.at("name").as_string(), "butterfly/s4");
      EXPECT_EQ(e.at("ts").as_u64(), 100u);
      EXPECT_EQ(e.at("dur").as_u64(), 250u);
      EXPECT_EQ(e.at("tid").as_u64(), 3u);
    }
  }
  EXPECT_TRUE(saw_meta);
  EXPECT_TRUE(saw_span);
}

// -------------------------------------------------------------- Metrics --

TEST(Metrics, SnapshotRoundTripsThroughJsonText) {
  MetricsRegistry reg;
  reg.counter("cryptopim.test.cycles", "cycles").add(12345);
  reg.counter("cryptopim.test.ops", "ops").add(7);
  auto& h = reg.histogram("cryptopim.test.latency", "cycles");
  for (const std::uint64_t v : {0u, 1u, 5u, 5u, 900u}) h.add(v);

  const Json snap = reg.snapshot();
  const auto parsed = parse_json(snap.dump());
  ASSERT_TRUE(parsed.ok) << parsed.error;
  const auto restored = MetricsRegistry::from_snapshot(parsed.value);
  EXPECT_EQ(restored.snapshot(), snap);

  EXPECT_EQ(restored.counters().at("cryptopim.test.cycles").value(), 12345u);
  const auto& rh = restored.histograms().at("cryptopim.test.latency");
  EXPECT_EQ(rh.count(), 5u);
  EXPECT_EQ(rh.sum(), 911u);
  EXPECT_EQ(rh.min(), 0u);
  EXPECT_EQ(rh.max(), 900u);
}

TEST(Metrics, HistogramBucketsArePowersOfTwo) {
  MetricsRegistry reg;
  auto& hist = reg.histogram("h");
  hist.add(0);  // bucket 0
  hist.add(1);  // bucket 1: [1, 2)
  hist.add(6);  // bucket 3: [4, 8)
  hist.add(7);
  EXPECT_EQ(hist.bucket(0), 1u);
  EXPECT_EQ(hist.bucket(1), 1u);
  EXPECT_EQ(hist.bucket(3), 2u);
  EXPECT_EQ(hist.mean(), 3.5);
}

TEST(Metrics, HistogramQuantileWalksBuckets) {
  MetricsRegistry reg;
  auto& hist = reg.histogram("h");
  EXPECT_EQ(hist.quantile(0.5), 0u);  // empty
  // 90 fast samples and 10 slow outliers: the p50 sits in the fast
  // bucket, the p99 in the slow one. Bucket resolution is a factor of
  // two, so compare against bucket edges, not exact sample values.
  for (int i = 0; i < 90; ++i) hist.add(10);   // bucket [8, 16)
  for (int i = 0; i < 10; ++i) hist.add(900);  // bucket [512, 1024)
  EXPECT_EQ(hist.quantile(0.50), 15u);   // upper edge of [8, 16)
  EXPECT_EQ(hist.quantile(0.90), 15u);
  EXPECT_EQ(hist.quantile(0.99), 900u);  // clamped to max
  EXPECT_EQ(hist.quantile(0.0), 10u);    // min
  EXPECT_EQ(hist.quantile(1.0), 900u);   // max
}

TEST(Metrics, HistogramEmptyIsAllZeros) {
  // The documented empty-histogram contract: every accessor returns 0,
  // every quantile (including the p=0 and p=1 extremes) returns 0, and
  // the mean does not divide by zero. Serving reports lean on this when
  // a run completes nothing.
  MetricsRegistry reg;
  auto& hist = reg.histogram("h");
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_EQ(hist.sum(), 0u);
  EXPECT_EQ(hist.min(), 0u);
  EXPECT_EQ(hist.max(), 0u);
  EXPECT_EQ(hist.mean(), 0.0);
  EXPECT_EQ(hist.quantile(0.0), 0u);
  EXPECT_EQ(hist.quantile(0.5), 0u);
  EXPECT_EQ(hist.quantile(1.0), 0u);
}

TEST(Metrics, HistogramFullQuantileIsExactMax) {
  // p >= 1 must return the exact maximum (not a pow2 bucket edge), and
  // p beyond 1 clamps rather than reading past the last bucket.
  MetricsRegistry reg;
  auto& hist = reg.histogram("h");
  hist.add(3);
  hist.add(1000);  // bucket [512, 1024), well below its upper edge
  EXPECT_EQ(hist.quantile(1.0), 1000u);
  EXPECT_EQ(hist.quantile(2.0), 1000u);
  EXPECT_EQ(hist.quantile(-0.5), 3u);  // p <= 0: the exact minimum
}

TEST(Metrics, HistogramSumFeedsMeanReporting) {
  // sum() is the accessor the CLI's mean-latency line is built from:
  // mean() == sum()/count() exactly, with no bucket quantisation.
  MetricsRegistry reg;
  auto& hist = reg.histogram("h");
  hist.add(7);
  hist.add(9);
  hist.add(20);
  EXPECT_EQ(hist.sum(), 36u);
  EXPECT_DOUBLE_EQ(hist.mean(), 12.0);
}

TEST(Metrics, HistogramQuantileClampsToObservedRange) {
  MetricsRegistry reg;
  auto& hist = reg.histogram("h");
  hist.add(100);
  // One sample: every quantile is that sample (min == max clamps the
  // bucket edge from both sides).
  EXPECT_EQ(hist.quantile(0.5), 100u);
  EXPECT_EQ(hist.quantile(0.999), 100u);
  hist.add(0);
  EXPECT_EQ(hist.quantile(0.25), 0u);  // rank 1 of 2 lands on the zero
}

// -------------------------------------------------------- BenchReporter --

TEST(BenchReporter, WritesParseableSchema) {
  BenchReporter rep("unit_test");
  rep.set_param("trials", "3");
  rep.add("latency", 12.5, "us", {{"n", "256"}});
  rep.add("throughput", 1e6, "1/s");
  EXPECT_EQ(rep.metric_count(), 2u);

  const std::string path = ::testing::TempDir() + "/bench_unit_test.json";
  ASSERT_TRUE(rep.write(path));
  std::ifstream is(path);
  std::stringstream buf;
  buf << is.rdbuf();
  const auto r = parse_json(buf.str());
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.value.at("bench").as_string(), "unit_test");
  EXPECT_EQ(r.value.at("schema").as_u64(), 1u);
  EXPECT_EQ(r.value.at("params").at("trials").as_string(), "3");
  const auto& metrics = r.value.at("metrics");
  ASSERT_EQ(metrics.size(), 2u);
  EXPECT_EQ(metrics[0].at("name").as_string(), "latency");
  EXPECT_EQ(metrics[0].at("params").at("n").as_string(), "256");
  std::remove(path.c_str());
}

// ------------------------------------------------------- WindowedSeries --

TEST(WindowedSeries, CountersLandInTheRightWindows) {
  WindowedSeries s(100);
  s.count("done", 5);
  s.count("done", 99);
  s.count("done", 100);   // next window
  s.count("done", 350);   // window 3 (window 2 stays sparse)
  ASSERT_EQ(s.window_count(), 3u);
  EXPECT_EQ(s.window_start(0), 0u);
  EXPECT_EQ(s.window_start(1), 100u);
  EXPECT_EQ(s.window_start(2), 300u);
  EXPECT_EQ(s.counter_at(0, "done"), 2u);
  EXPECT_EQ(s.counter_at(1, "done"), 1u);
  EXPECT_EQ(s.counter_at(2, "done"), 1u);
  EXPECT_EQ(s.counter_at(2, "missing"), 0u);
  EXPECT_EQ(s.total_count("done"), 4u);
}

TEST(WindowedSeries, HistogramsKeepExactMinMaxPerWindow) {
  WindowedSeries s(1000);
  s.observe("lat", 10, 100);
  s.observe("lat", 20, 100);  // narrow distribution: min == max
  s.observe("lat", 1500, 7000);
  const Histogram* w0 = s.histogram_at(0, "lat");
  ASSERT_NE(w0, nullptr);
  EXPECT_EQ(w0->count(), 2u);
  // The clamp regression: a pow2 bucket edge would report 127 here.
  EXPECT_EQ(w0->quantile(0.99), 100u);
  EXPECT_EQ(w0->min(), 100u);
  EXPECT_EQ(w0->max(), 100u);
  EXPECT_EQ(s.total_observations("lat"), 3u);
  EXPECT_EQ(s.histogram_at(0, "nope"), nullptr);
}

TEST(WindowedSeries, EvictionFoldsWithoutLosingCounts) {
  // Capacity 4: windows 0..9 force six evictions; the Σ-invariant must
  // survive them (folded + live == everything ever recorded).
  WindowedSeries s(10, 4);
  std::uint64_t expected = 0;
  for (std::uint64_t c = 0; c < 100; c += 10) {
    s.count("ev", c, c / 10 + 1);
    expected += c / 10 + 1;
    s.observe("lat", c, c + 1);
  }
  EXPECT_EQ(s.window_count(), 4u);
  EXPECT_EQ(s.evicted_windows(), 6u);
  EXPECT_EQ(s.total_count("ev"), expected);
  EXPECT_EQ(s.total_observations("lat"), 10u);
  // Early-cycle samples after eviction land in the oldest live window
  // rather than resurrecting an evicted one.
  s.count("ev", 0);
  EXPECT_EQ(s.total_count("ev"), expected + 1);
  EXPECT_EQ(s.window_count(), 4u);
}

TEST(WindowedSeries, ToJsonCarriesSchemaWindowsAndSummaries) {
  WindowedSeries s(50);
  s.count("completed", 10, 3);
  s.observe("lat", 10, 900);
  s.observe("lat", 60, 901);
  const Json j = s.to_json();
  EXPECT_EQ(j.at("schema").as_string(), "timeseries/1");
  EXPECT_EQ(j.at("window_cycles").as_u64(), 50u);
  ASSERT_EQ(j.at("windows").size(), 2u);
  const Json& w0 = j.at("windows")[0];
  EXPECT_EQ(w0.at("start").as_u64(), 0u);
  EXPECT_EQ(w0.at("counters").at("completed").as_u64(), 3u);
  const Json& h = w0.at("histograms").at("lat");
  EXPECT_EQ(h.at("count").as_u64(), 1u);
  EXPECT_EQ(h.at("min").as_u64(), 900u);
  EXPECT_EQ(h.at("max").as_u64(), 900u);
  EXPECT_EQ(h.at("p99").as_u64(), 900u);  // clamped, not a bucket edge
  // Deterministic: same inputs, same bytes.
  EXPECT_EQ(j.dump(), s.to_json().dump());
  // Disabled series: no-ops, enabled() false.
  WindowedSeries off;
  off.count("x", 1);
  EXPECT_FALSE(off.enabled());
  EXPECT_EQ(off.window_count(), 0u);
}

// -------------------------------------------------------- SloAccountant --

TEST(Slo, ErrorBudgetMath) {
  SloConfig cfg;
  cfg.availability = 0.99;  // 1% error budget
  SloAccountant slo(cfg, 100, 1.0);
  ASSERT_TRUE(slo.enabled());
  for (int i = 0; i < 99; ++i) slo.record_good(i, 1);
  slo.record_bad(50);
  EXPECT_EQ(slo.total(), 100u);
  EXPECT_EQ(slo.errors(), 1u);
  EXPECT_DOUBLE_EQ(slo.availability(), 0.99);
  // 1 error / (0.01 * 100 allowed) = exactly the whole budget.
  EXPECT_NEAR(slo.error_budget_consumed(), 1.0, 1e-9);
  // One window holds everything: its burn is the cumulative burn.
  EXPECT_NEAR(slo.max_window_burn(), 1.0, 1e-9);
}

TEST(Slo, LatencyObjectiveCountsViolations) {
  SloConfig cfg;
  cfg.latency_us = 10.0;        // threshold: 10 us = 100 cycles below
  cfg.latency_objective = 0.9;  // 10% of completions may exceed it
  SloAccountant slo(cfg, 1000, 10.0);  // 10 cycles per us
  for (int i = 0; i < 9; ++i) slo.record_good(i, 50);  // under threshold
  slo.record_good(9, 500);                             // over (500 > 100)
  EXPECT_EQ(slo.latency_violations(), 1u);
  // 1 violation / (0.1 * 10 completions) = whole latency budget.
  EXPECT_NEAR(slo.latency_budget_consumed(), 1.0, 1e-9);
  // No availability objective: error budget off even with bad outcomes.
  slo.record_bad(10);
  EXPECT_DOUBLE_EQ(slo.error_budget_consumed(), 0.0);
}

TEST(Slo, PerWindowBurnIsolatesTheBadWindow) {
  SloConfig cfg;
  cfg.availability = 0.9;  // allowed error rate 0.1
  SloAccountant slo(cfg, 100, 1.0);
  // Window 0: clean. Window 1: half the traffic fails (burn 5x).
  for (int i = 0; i < 10; ++i) slo.record_good(i, 1);
  for (int i = 100; i < 105; ++i) slo.record_good(i, 1);
  for (int i = 105; i < 110; ++i) slo.record_bad(i);
  EXPECT_NEAR(slo.max_window_burn(), 5.0, 1e-9);
  const Json j = slo.to_json();
  EXPECT_EQ(j.at("schema").as_string(), "slo/1");
  ASSERT_EQ(j.at("windows").size(), 2u);
  EXPECT_NEAR(j.at("windows")[0].at("burn").as_number(), 0.0, 1e-9);
  EXPECT_NEAR(j.at("windows")[1].at("burn").as_number(), 5.0, 1e-9);
  EXPECT_EQ(j.at("summary").at("errors").as_u64(), 5u);
}

TEST(Slo, DisabledAccountantIsInert) {
  SloAccountant slo;
  EXPECT_FALSE(slo.enabled());
  slo.record_good(0, 1);
  slo.record_bad(0);
  EXPECT_EQ(slo.total(), 0u);
  EXPECT_DOUBLE_EQ(slo.availability(), 1.0);
  EXPECT_DOUBLE_EQ(slo.error_budget_consumed(), 0.0);
}

// ------------------------------------------------------------- EventLog --

TEST(EventLog, JsonlHasHeaderAndOneRecordPerLine) {
  EventLog log;
  log.set_enabled(true);
  Json a = Json::object();
  a.set("ev", "admitted");
  a.set("cycle", 10);
  log.log(std::move(a));
  Json b = Json::object();
  b.set("ev", "completed");
  b.set("cycle", 20);
  log.log(std::move(b));

  const std::string text = log.to_jsonl();
  std::istringstream is(text);
  std::string line;
  std::vector<Json> lines;
  while (std::getline(is, line)) {
    const auto r = parse_json(line);
    ASSERT_TRUE(r.ok) << r.error;
    lines.push_back(r.value);
  }
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0].at("schema").as_string(), "serve-events/2");
  EXPECT_EQ(lines[0].at("records").as_u64(), 2u);
  EXPECT_EQ(lines[1].at("ev").as_string(), "admitted");
  EXPECT_EQ(lines[2].at("ev").as_string(), "completed");
}

TEST(EventLog, DisabledLogDropsRecords) {
  EventLog log;
  ASSERT_FALSE(log.enabled());
  Json rec = Json::object();
  rec.set("ev", "x");
  log.log(std::move(rec));
  EXPECT_EQ(log.size(), 0u);
  EXPECT_THROW(log.write_jsonl("/nonexistent-dir/x.jsonl"),
               std::runtime_error);
}

// ------------------------------------------------------ Tracer flows --

TEST(Tracer, FlowEventsExportAsChromeFlowArrows) {
  Tracer t;
  t.set_enabled(true);
  t.emit(1, "req 7", "runtime", 0, 100);
  t.emit(2, "req 7 retry", "runtime", 150, 100);
  t.flow('s', 7, 1, "req 7", "flow", 0);
  t.flow('t', 7, 2, "req 7", "flow", 150);
  t.flow('f', 7, 2, "req 7", "flow", 250);

  const Json doc = t.chrome_trace();
  int starts = 0, steps = 0, ends = 0;
  for (const auto& e : doc.at("traceEvents").items()) {
    const auto& ph = e.at("ph").as_string();
    if (ph == "s") {
      ++starts;
      EXPECT_EQ(e.at("id").as_u64(), 7u);
      EXPECT_FALSE(e.contains("bp"));  // start opens the chain
    } else if (ph == "t") {
      ++steps;
      EXPECT_EQ(e.at("bp").as_string(), "e");  // binds to enclosing slice
    } else if (ph == "f") {
      ++ends;
      EXPECT_EQ(e.at("id").as_u64(), 7u);
      EXPECT_EQ(e.at("ts").as_u64(), 250u);
      EXPECT_EQ(e.at("bp").as_string(), "e");
    }
  }
  EXPECT_EQ(starts, 1);
  EXPECT_EQ(steps, 1);
  EXPECT_EQ(ends, 1);
}

// ----------------------------------------------- serving observability --

namespace serving_obs {

runtime::ServingConfig chaos_config() {
  runtime::ServingConfig cfg;
  cfg.workload.mix = {{256, 2.0}, {1024, 1.0}};
  cfg.workload.tenants = 2;
  cfg.workload.seed = 21;
  cfg.arrival_rate_per_s = 30000.0;
  cfg.duration_us = 3000.0;
  cfg.resilience = runtime::ResilienceConfig::chaos_preset(21);
  cfg.slo.availability = 0.999;
  cfg.slo.latency_us = 500.0;
  return cfg;
}

}  // namespace serving_obs

TEST(ServingObs, WindowedTotalsMatchCumulativeCounters) {
  const auto r = runtime::ServingRuntime(serving_obs::chaos_config()).run();
  const auto& s = r.series;
  ASSERT_TRUE(s.enabled());
  // The Σ-invariant: per-window counts (plus any folded windows) must
  // reproduce the cumulative report counters exactly.
  EXPECT_EQ(s.total_count("submitted"), r.submitted);
  EXPECT_EQ(s.total_count("admitted"), r.admitted);
  EXPECT_EQ(s.total_count("completed"), r.completed);
  EXPECT_EQ(s.total_count("rejected"),
            r.rejected + r.rejected_unservable +
                r.resilience.rejected_deadline);
  EXPECT_EQ(s.total_count("shed"), r.resilience.shed);
  EXPECT_EQ(s.total_count("retries"), r.resilience.retries);
  EXPECT_EQ(s.total_count("hedges"), r.resilience.hedges);
  EXPECT_EQ(s.total_observations("latency_cycles"), r.completed);
  // Every terminal outcome is accounted good or bad exactly once.
  EXPECT_EQ(r.slo.total(),
            r.completed + r.rejected + r.rejected_unservable +
                r.resilience.rejected_deadline + r.resilience.shed +
                r.resilience.timed_out + r.resilience.failed);
  EXPECT_GT(r.slo.total(), 0u);
}

TEST(ServingObs, EventLogAndReportAreByteDeterministic) {
  const auto cfg = serving_obs::chaos_config();
  EventLog log_a, log_b;
  log_a.set_enabled(true);
  log_b.set_enabled(true);
  runtime::ServingRuntime rt_a(cfg);
  rt_a.set_event_log(&log_a);
  const auto rep_a = rt_a.run();
  runtime::ServingRuntime rt_b(cfg);
  rt_b.set_event_log(&log_b);
  const auto rep_b = rt_b.run();

  EXPECT_GT(log_a.size(), 0u);
  EXPECT_EQ(log_a.to_jsonl(), log_b.to_jsonl());
  EXPECT_EQ(rep_a.to_json().dump(), rep_b.to_json().dump());
}

TEST(ServingObs, EventLogCausalChainsAreComplete) {
  const auto cfg = serving_obs::chaos_config();
  EventLog log;
  log.set_enabled(true);
  runtime::ServingRuntime rt(cfg);
  rt.set_event_log(&log);
  const auto rep = rt.run();

  struct Chain {
    bool admitted = false;
    std::uint64_t dispatched = 0;
    std::uint64_t completed = 0;
    std::uint64_t last_cycle = 0;
    unsigned max_attempt = 0;
  };
  std::map<std::uint64_t, Chain> chains;
  std::uint64_t completions = 0;
  std::uint64_t prev_cycle = 0;
  for (const Json& rec : log.records()) {
    const auto& ev = rec.at("ev").as_string();
    const std::uint64_t cycle = rec.at("cycle").as_u64();
    // Records are in event-clock order (the log is append-only and the
    // clock is monotonic).
    EXPECT_GE(cycle, prev_cycle);
    prev_cycle = cycle;
    if (!rec.contains("trace")) continue;  // control records
    Chain& c = chains[rec.at("trace").as_u64()];
    EXPECT_GE(cycle, c.last_cycle);  // per-chain causal order
    c.last_cycle = cycle;
    if (ev == "admitted") c.admitted = true;
    if (ev == "dispatched") {
      c.dispatched += 1;
      if (rec.contains("attempt")) {
        const auto att = static_cast<unsigned>(rec.at("attempt").as_u64());
        EXPECT_GT(att, 0u);
        c.max_attempt = std::max(c.max_attempt, att);
      }
    }
    if (ev == "retry") {
      // A retry always follows a dispatch of the same chain.
      EXPECT_GT(c.dispatched, 0u);
    }
    if (ev == "hedge") {
      EXPECT_GT(rec.at("parent").as_u64(), 0u);
      EXPECT_GT(c.dispatched, 0u);
    }
    if (ev == "completed") {
      c.completed += 1;
      ++completions;
      EXPECT_TRUE(c.admitted);
      EXPECT_GT(c.dispatched, 0u);
    }
  }
  // The log's completions are the report's, and no chain delivered twice.
  EXPECT_EQ(completions, rep.completed);
  for (const auto& [trace, c] : chains) {
    EXPECT_LE(c.completed, 1u) << "trace " << trace << " delivered twice";
    if (c.dispatched > 0) {
      EXPECT_TRUE(c.admitted) << "trace " << trace << " dispatched unadmitted";
    }
  }
}

// -------------------------------------------------- simulator integration --

#if CRYPTOPIM_TRACING

TEST(TraceIntegration, PipelineSpansSumToWallCycles) {
  const auto p = ntt::NttParams::for_degree(256);
  sim::CryptoPimSimulator simu(p);
  Tracer local;
  local.set_enabled(true);
  MetricsRegistry reg;
  simu.set_tracer(&local);
  simu.set_metrics(&reg);

  Xoshiro256 rng(11);
  const auto a = ntt::sample_uniform(p.n, p.q, rng);
  const auto b = ntt::sample_uniform(p.n, p.q, rng);
  simu.multiply(a, b);
  const auto& rep = simu.report();

  std::uint64_t pipeline_sum = 0, pipeline_spans = 0;
  for (const auto& e : local.events()) {
    if (e.track == sim::CryptoPimSimulator::kPipelineTrack) {
      pipeline_sum += e.dur;
      ++pipeline_spans;
    }
  }
  EXPECT_EQ(pipeline_spans, rep.stage_cycles.size());
  EXPECT_EQ(pipeline_sum, rep.wall_cycles);

  // Per-bank and softbank tracks both carried events.
  bool saw_bank = false, saw_softbank = false, saw_circuit = false;
  for (const auto& e : local.events()) {
    saw_bank |= e.track < sim::CryptoPimSimulator::kSoftbankTrackBase;
    saw_softbank |=
        e.track >= sim::CryptoPimSimulator::kSoftbankTrackBase &&
        e.track < sim::CryptoPimSimulator::kPipelineTrack;
    saw_circuit |= e.cat == "circuit";
  }
  EXPECT_TRUE(saw_bank);
  EXPECT_TRUE(saw_softbank);
  EXPECT_TRUE(saw_circuit);

  // Metrics mirrored the stage ledger.
  EXPECT_EQ(reg.counters().at("cryptopim.sim.wall_cycles").value(),
            rep.wall_cycles);
  EXPECT_GT(reg.counters().at("cryptopim.exec.cycles").value(), 0u);
}

TEST(TraceIntegration, DisabledCustomTracerStaysEmpty) {
  const auto p = ntt::NttParams::for_degree(64);
  sim::CryptoPimSimulator simu(p);
  Tracer local;  // never enabled
  simu.set_tracer(&local);
  Xoshiro256 rng(5);
  const auto a = ntt::sample_uniform(p.n, p.q, rng);
  const auto b = ntt::sample_uniform(p.n, p.q, rng);
  simu.multiply(a, b);
  EXPECT_TRUE(local.events().empty());
}

#endif  // CRYPTOPIM_TRACING

}  // namespace
}  // namespace cryptopim::obs
