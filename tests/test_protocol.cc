// Protocol workload engine (src/runtime/protocol.*, protocol_ops.*, and
// the dependency-aware dispatch wired through src/runtime/serving.cc):
// DAG compilation shapes, whole-proto conservation (a protocol request
// completes iff all of its ops complete, and dies exactly once when one
// op dies), fan-out lane placement, determinism, and the functional
// harness that runs each flow through a backend against the pure-host
// references.
#include "runtime/protocol.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>

#include "obs/event_log.h"
#include "runtime/backend.h"
#include "runtime/fleet.h"
#include "runtime/protocol_ops.h"
#include "runtime/serving.h"

namespace cryptopim::runtime {
namespace {

ServingConfig proto_config(ProtocolKind kind, std::uint64_t seed,
                           double duration_us = 800.0) {
  ServingConfig cfg;
  cfg.protocol.kind = kind;
  cfg.workload.mix = {
      {kind == ProtocolKind::kKem ? kKemDegree : kBgvDegree, 1.0}};
  cfg.workload.tenants = 4;
  cfg.workload.seed = seed;
  cfg.workload.verify_every = 0;
  cfg.arrival_rate_per_s = 20000.0;
  cfg.duration_us = duration_us;
  return cfg;
}

std::string json_text(const ServingReport& r) {
  std::ostringstream os;
  r.to_json().write(os);
  return os.str();
}

/// Every op's parents are strictly earlier in the topological order.
void expect_topological(const ProtoDag& dag) {
  for (std::size_t i = 0; i < dag.ops.size(); ++i) {
    EXPECT_EQ(dag.ops[i].parent_mask >> i, 0u)
        << "op " << i << " depends on itself or a later op";
  }
}

/// A drained protocol run conserves protos: every submitted request is
/// rejected whole or reaches exactly one of completed/failed.
void expect_proto_conserved(const ServingReport& r) {
  const auto& p = r.protocol;
  EXPECT_TRUE(r.protocol_enabled);
  EXPECT_EQ(p.requests, p.completed + p.failed + p.rejected);
  // Main counters run at op granularity: admission is all-or-nothing.
  EXPECT_EQ(r.admitted, (p.requests - p.rejected) * p.ops_per_request);
  // A completed proto completed every one of its ops.
  EXPECT_GE(p.ops_completed, p.completed * p.ops_per_request);
  EXPECT_EQ(p.join_mismatches, 0u);
}

// --------------------------------------------------------- compilation --

TEST(CompileProtocol, KemShape) {
  ProtocolSpec spec;
  spec.kind = ProtocolKind::kKem;
  const ProtoDag dag = compile_protocol(spec);
  ASSERT_EQ(dag.ops.size(), 8u);
  EXPECT_EQ(dag.lane_degree, kKemDegree);
  expect_topological(dag);
  EXPECT_EQ(dag.ops[0].cls, OpClass::kSample);
  EXPECT_EQ(dag.ops[0].parent_mask, 0u);
  // Encaps multiplies fan out from the sample on distinct lanes.
  EXPECT_EQ(dag.ops[1].cls, OpClass::kPolymul);
  EXPECT_EQ(dag.ops[2].cls, OpClass::kPolymul);
  EXPECT_EQ(dag.ops[1].fanout_group, dag.ops[2].fanout_group);
  EXPECT_NE(dag.ops[1].fanout_group, 0u);
  EXPECT_EQ(dag.ops[1].degree, kKemDegree);
  // The decaps multiply joins both encaps products.
  EXPECT_EQ(dag.ops[3].parent_mask, (1u << 1) | (1u << 2));
  EXPECT_EQ(dag.ops.back().cls, OpClass::kAggregate);
  EXPECT_NE(dag.ops.back().parent_mask, 0u);
}

TEST(CompileProtocol, BgvShape) {
  ProtocolSpec spec;
  spec.kind = ProtocolKind::kBgvMul;
  const ProtoDag dag = compile_protocol(spec);
  ASSERT_EQ(dag.ops.size(), 2u + 4 * kRnsLimbs);
  EXPECT_EQ(dag.lane_degree, kBgvDegree);
  expect_topological(dag);
  EXPECT_EQ(dag.ops.front().cls, OpClass::kSample);
  EXPECT_EQ(dag.ops.back().cls, OpClass::kAggregate);
  // Four tensor multiplies, each fanned across the RNS limbs; the join
  // waits for every limb of every multiply.
  std::map<std::uint32_t, unsigned> group_sizes;
  std::uint64_t limb_mask = 0;
  for (std::size_t i = 0; i < dag.ops.size(); ++i) {
    if (dag.ops[i].cls != OpClass::kNttLimb) continue;
    ASSERT_NE(dag.ops[i].fanout_group, 0u);
    group_sizes[dag.ops[i].fanout_group] += 1;
    limb_mask |= std::uint64_t{1} << i;
    EXPECT_EQ(dag.ops[i].parent_mask, 1u) << "limb op " << i;
  }
  EXPECT_EQ(group_sizes.size(), 4u);
  for (const auto& [g, n] : group_sizes) EXPECT_EQ(n, kRnsLimbs);
  EXPECT_EQ(dag.ops.back().parent_mask, limb_mask);
}

TEST(CompileProtocol, ThresholdShapeTracksShares) {
  for (unsigned k : {kMinShares, 5u, kMaxShares}) {
    ProtocolSpec spec;
    spec.kind = ProtocolKind::kThreshold;
    spec.shares = k;
    const ProtoDag dag = compile_protocol(spec);
    ASSERT_EQ(dag.ops.size(), k + 2u);
    expect_topological(dag);
    for (unsigned i = 1; i <= k; ++i) {
      EXPECT_EQ(dag.ops[i].cls, OpClass::kPolymul);
      EXPECT_EQ(dag.ops[i].parent_mask, 1u);
      EXPECT_NE(dag.ops[i].fanout_group, 0u);
    }
    EXPECT_EQ(dag.ops.back().cls, OpClass::kAggregate);
  }
}

TEST(CompileProtocol, InvalidSpecsThrow) {
  ProtocolSpec spec;
  EXPECT_THROW(compile_protocol(spec), std::invalid_argument);  // kNone
  spec.kind = ProtocolKind::kThreshold;
  spec.shares = kMinShares - 1;
  EXPECT_THROW(compile_protocol(spec), std::invalid_argument);
  spec.shares = kMaxShares + 1;
  EXPECT_THROW(compile_protocol(spec), std::invalid_argument);
}

// ------------------------------------------------- serving conservation --

TEST(ProtocolServing, KemRunConservesProtosAndOps) {
  const auto r = ServingRuntime(proto_config(ProtocolKind::kKem, 7)).run();
  EXPECT_GT(r.protocol.requests, 0u);
  EXPECT_GT(r.protocol.completed, 0u);
  EXPECT_GT(r.protocol.host_ops, 0u);
  expect_proto_conserved(r);
  // A fully-drained healthy run completes every admitted proto.
  EXPECT_EQ(r.protocol.failed, 0u);
  EXPECT_EQ(r.protocol.ops_completed,
            r.protocol.completed * r.protocol.ops_per_request);
}

TEST(ProtocolServing, EveryProtoGetsExactlyOneTerminalOutcome) {
  for (const auto kind : {ProtocolKind::kKem, ProtocolKind::kBgvMul,
                          ProtocolKind::kThreshold}) {
    ServingRuntime rt(proto_config(kind, 11));
    std::map<std::uint64_t, unsigned> fates;
    rt.set_outcome_sink([&fates](const Request& req, Outcome, std::uint64_t) {
      fates[req.id] += 1;
    });
    const auto r = rt.run();
    expect_proto_conserved(r);
    EXPECT_EQ(fates.size(), r.protocol.requests);
    for (const auto& [id, n] : fates) {
      EXPECT_EQ(n, 1u) << "origin " << id << " got " << n << " outcomes";
    }
  }
}

TEST(ProtocolServing, MidDagBankFailureKeepsProtosWhole) {
  // A bank dies mid-run: in-flight ops on the torn-down lanes either
  // requeue (raw retry path) or take their whole proto down exactly
  // once. Either way the proto ledger stays conserved and no origin
  // reports two fates.
  ServingConfig cfg = proto_config(ProtocolKind::kKem, 13, 1200.0);
  cfg.fail_bank_at_us = 300.0;
  ServingRuntime rt(cfg);
  std::map<std::uint64_t, unsigned> fates;
  rt.set_outcome_sink([&fates](const Request& req, Outcome, std::uint64_t) {
    fates[req.id] += 1;
  });
  const auto r = rt.run();
  EXPECT_EQ(r.bank_failures, 1u);
  expect_proto_conserved(r);
  for (const auto& [id, n] : fates) EXPECT_EQ(n, 1u);
}

TEST(ProtocolServing, ChaosCancelsDeadProtosExactlyOnce) {
  // Chaos corrupting windows + zero retries force op deaths; the victim
  // proto must be cancelled whole (siblings swept) and counted once.
  ServingConfig cfg = proto_config(ProtocolKind::kThreshold, 23, 4000.0);
  cfg.protocol.shares = 4;
  cfg.workload.verify_every = 8;
  cfg.resilience = ResilienceConfig::chaos_preset(23);
  cfg.resilience.max_retries = 0;
  ServingRuntime rt(cfg);
  std::map<std::uint64_t, unsigned> fates;
  rt.set_outcome_sink([&fates](const Request& req, Outcome, std::uint64_t) {
    fates[req.id] += 1;
  });
  const auto r = rt.run();
  expect_proto_conserved(r);
  EXPECT_EQ(r.resilience.wrong_accepted, 0u);
  for (const auto& [id, n] : fates) EXPECT_EQ(n, 1u);
  // Op-level conservation: every admitted op completed, was swept as a
  // cancelled sibling, or was the one dying op that took its proto down
  // (exactly one per failed proto).
  EXPECT_GT(r.protocol.failed, 0u) << "chaos cell produced no failures";
  EXPECT_GT(r.protocol.ops_cancelled, 0u);
  EXPECT_EQ(r.protocol.ops_completed + r.protocol.ops_cancelled +
                r.protocol.failed,
            (r.protocol.requests - r.protocol.rejected) *
                r.protocol.ops_per_request);
}

// ------------------------------------------------------ lane placement --

TEST(ProtocolServing, BgvLimbFanOutLandsOnDistinctLanes) {
  ServingConfig cfg = proto_config(ProtocolKind::kBgvMul, 5);
  ServingRuntime rt(cfg);
  obs::EventLog elog;
  elog.set_enabled(true);
  rt.set_event_log(&elog);
  const auto r = rt.run();
  expect_proto_conserved(r);
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::set<std::uint64_t>>
      group_lanes;
  std::map<std::pair<std::uint64_t, std::uint64_t>, unsigned> group_ops;
  for (const obs::Json& rec : elog.records()) {
    if (!rec.contains("ev") || rec.at("ev").as_string() != "dispatched") {
      continue;
    }
    if (!rec.contains("group") || rec.contains("host")) continue;
    const auto key = std::make_pair(rec.at("proto").as_u64(),
                                    rec.at("group").as_u64());
    group_lanes[key].insert(rec.at("lane").as_u64());
    group_ops[key] += 1;
  }
  ASSERT_GT(group_lanes.size(), 0u);
  for (const auto& [key, lanes] : group_lanes) {
    // Strict sibling exclusion: every limb of a fan-out group runs on
    // its own lane (no retries/hedges in this config to re-land one).
    EXPECT_EQ(lanes.size(), group_ops.at(key))
        << "proto " << key.first << " group " << key.second;
    EXPECT_GE(lanes.size(), 2u);
  }
}

// ---------------------------------------------------------- determinism --

TEST(ProtocolServing, SameSeedIsByteIdentical) {
  const auto a = ServingRuntime(proto_config(ProtocolKind::kKem, 9)).run();
  const auto b = ServingRuntime(proto_config(ProtocolKind::kKem, 9)).run();
  EXPECT_EQ(json_text(a), json_text(b));
}

TEST(ProtocolServing, RawReportCarriesNoProtocolBlock) {
  ServingConfig cfg;
  cfg.duration_us = 200.0;
  const auto raw = ServingRuntime(cfg).run();
  EXPECT_FALSE(raw.protocol_enabled);
  EXPECT_EQ(json_text(raw).find("\"protocol\""), std::string::npos);
  const auto proto =
      ServingRuntime(proto_config(ProtocolKind::kKem, 3, 300.0)).run();
  EXPECT_NE(json_text(proto).find("\"protocol\""), std::string::npos);
}

// ------------------------------------------------------- fleet teardown --

TEST(ProtocolServing, FleetChipKillKeepsTerminalRecordsUnique) {
  FleetConfig fc;
  fc.chips = 3;
  fc.replicas = 2;
  fc.chip = proto_config(ProtocolKind::kKem, 17, 1500.0);
  fc.chip.workload.verify_every = 32;
  fc.kill_chip_at_us = 500.0;
  fc.kill_chip = 1;
  FleetRuntime fleet(std::move(fc));
  obs::EventLog elog;
  elog.set_enabled(true);
  fleet.set_event_log(&elog);
  const auto rep = fleet.run();
  EXPECT_EQ(rep.crashes, 1u);
  // Fleet-level conservation still holds with DAG-shaped requests.
  EXPECT_EQ(rep.submitted, rep.completed + rep.rejected + rep.shed +
                               rep.timed_out + rep.failed + rep.queued);
  // Per (chip, proto): at most one terminal record — a proto either
  // joins once, fails once, or was migrated untouched (and re-admitted
  // under a fresh identity elsewhere).
  std::map<std::pair<std::uint64_t, std::uint64_t>, unsigned> terminal;
  std::uint64_t joins = 0;
  for (const obs::Json& rec : elog.records()) {
    if (!rec.contains("ev")) continue;
    const std::string ev = rec.at("ev").as_string();
    if (ev != "join" && ev != "proto_failed") continue;
    if (ev == "join") {
      joins += 1;
      EXPECT_TRUE(rec.at("ok").as_bool());
    }
    terminal[{rec.at("chip").as_u64(), rec.at("proto").as_u64()}] += 1;
  }
  EXPECT_GT(joins, 0u);
  for (const auto& [key, n] : terminal) {
    EXPECT_EQ(n, 1u) << "chip " << key.first << " proto " << key.second;
  }
  std::uint64_t mismatches = 0;
  for (const auto& c : rep.chip_reports) {
    mismatches += c.protocol.join_mismatches;
  }
  EXPECT_EQ(mismatches, 0u);
}

// --------------------------------------------------- functional harness --

TEST(ProtocolHarnessTest, AllKindsVerifyThroughWordBackend) {
  const auto backend = make_backend("word");
  ASSERT_TRUE(backend && backend->functional());
  for (const auto kind : {ProtocolKind::kKem, ProtocolKind::kBgvMul,
                          ProtocolKind::kThreshold}) {
    ProtocolSpec spec;
    spec.kind = kind;
    spec.shares = 3;
    ProtocolHarness harness(spec, backend.get());
    for (std::uint64_t seed : {1ull, 42ull, 20206ull}) {
      EXPECT_TRUE(harness.verify(seed))
          << protocol_name(kind) << " seed " << seed;
    }
  }
}

TEST(ProtocolHarnessTest, RejectsNonFunctionalBackend) {
  const auto analytic = make_backend("analytic");
  ASSERT_TRUE(analytic);
  ProtocolSpec spec;
  spec.kind = ProtocolKind::kKem;
  EXPECT_THROW(ProtocolHarness(spec, analytic.get()), std::invalid_argument);
  EXPECT_THROW(ProtocolHarness(spec, nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace cryptopim::runtime
