// End-to-end tests of the functional CryptoPIM simulator (src/sim/*):
// full polynomial multiplications executed in simulated crossbars must be
// bit-exact against the software NTT engine (itself verified against a
// schoolbook oracle), across degrees, moduli and bank configurations.
#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "common/rng.h"
#include "model/performance.h"
#include "ntt/poly.h"

namespace cryptopim::sim {
namespace {

class SimDegrees : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(SimDegrees, MatchesSoftwareNtt) {
  const std::uint32_t n = GetParam();
  const auto p = ntt::NttParams::for_degree(n);
  CryptoPimSimulator simu(p);
  ntt::GsNttEngine eng(p);
  Xoshiro256 rng(n + 1);
  const auto a = ntt::sample_uniform(n, p.q, rng);
  const auto b = ntt::sample_uniform(n, p.q, rng);
  EXPECT_EQ(simu.multiply(a, b), eng.negacyclic_multiply(a, b));
}

INSTANTIATE_TEST_SUITE_P(UpTo4k, SimDegrees,
                         ::testing::Values(16u, 64u, 256u, 512u, 1024u, 2048u,
                                           4096u));

TEST(Sim, MatchesSchoolbookOracle) {
  const auto p = ntt::NttParams::for_degree(256);
  CryptoPimSimulator simu(p);
  Xoshiro256 rng(99);
  const auto a = ntt::sample_uniform(p.n, p.q, rng);
  const auto b = ntt::sample_uniform(p.n, p.q, rng);
  EXPECT_EQ(simu.multiply(a, b), ntt::schoolbook_negacyclic(a, b, p.q));
}

TEST(Sim, MultiBankDegree8k) {
  // 16 banks, butterfly strides crossing bank boundaries.
  const auto p = ntt::NttParams::for_degree(8192);
  CryptoPimSimulator simu(p);
  ntt::GsNttEngine eng(p);
  Xoshiro256 rng(7);
  const auto a = ntt::sample_uniform(p.n, p.q, rng);
  const auto b = ntt::sample_uniform(p.n, p.q, rng);
  EXPECT_EQ(simu.multiply(a, b), eng.negacyclic_multiply(a, b));
}

TEST(Sim, RingIdentities) {
  const auto p = ntt::NttParams::for_degree(512);
  CryptoPimSimulator simu(p);
  // x^{n-1} * x = -1.
  ntt::Poly a(p.n, 0), b(p.n, 0);
  a[p.n - 1] = 1;
  b[1] = 1;
  const auto c = simu.multiply(a, b);
  EXPECT_EQ(c[0], p.q - 1);
  for (std::size_t i = 1; i < c.size(); ++i) ASSERT_EQ(c[i], 0u);
  // Multiplication by the unit polynomial.
  Xoshiro256 rng(3);
  const auto r = ntt::sample_uniform(p.n, p.q, rng);
  ntt::Poly one(p.n, 0);
  one[0] = 1;
  EXPECT_EQ(simu.multiply(r, one), r);
  // Zero annihilates.
  const ntt::Poly zero(p.n, 0);
  EXPECT_EQ(simu.multiply(r, zero), zero);
}

TEST(Sim, StageCountMatchesStructure) {
  // psi-scale (x2 polys) + 2*log2n butterflies (x2 until pointwise ...):
  // total accumulated stage programs = 2 + 2*log2n + 1 + log2n + 1.
  const auto p = ntt::NttParams::for_degree(256);
  CryptoPimSimulator simu(p);
  Xoshiro256 rng(5);
  const auto a = ntt::sample_uniform(p.n, p.q, rng);
  const auto b = ntt::sample_uniform(p.n, p.q, rng);
  simu.multiply(a, b);
  EXPECT_EQ(simu.report().stages, 2u + 2 * 8 + 1 + 8 + 1);
}

TEST(Sim, WallCyclesWithinModelBand) {
  // The functional simulation executes real (trimmed) micro-code; its
  // critical path must land near the analytic non-pipelined model built
  // from the paper's formulas.
  for (const std::uint32_t n : {256u, 1024u}) {
    const auto p = ntt::NttParams::for_degree(n);
    CryptoPimSimulator simu(p);
    Xoshiro256 rng(n);
    const auto a = ntt::sample_uniform(n, p.q, rng);
    const auto b = ntt::sample_uniform(n, p.q, rng);
    simu.multiply(a, b);
    const auto np = model::cryptopim_non_pipelined(n);
    const double ratio =
        simu.report().latency_us / np.latency_us;
    EXPECT_GT(ratio, 0.6) << "n=" << n;
    EXPECT_LT(ratio, 1.4) << "n=" << n;
  }
}

TEST(Sim, EnergyScalesWithDegree) {
  double prev = 0;
  for (const std::uint32_t n : {256u, 512u, 1024u}) {
    const auto p = ntt::NttParams::for_degree(n);
    CryptoPimSimulator simu(p);
    Xoshiro256 rng(n);
    const auto a = ntt::sample_uniform(n, p.q, rng);
    const auto b = ntt::sample_uniform(n, p.q, rng);
    simu.multiply(a, b);
    EXPECT_GT(simu.report().energy_uj, prev);
    prev = simu.report().energy_uj;
  }
}

TEST(Sim, ReportIsResetBetweenRuns) {
  const auto p = ntt::NttParams::for_degree(64);
  CryptoPimSimulator simu(p);
  Xoshiro256 rng(1);
  const auto a = ntt::sample_uniform(p.n, p.q, rng);
  const auto b = ntt::sample_uniform(p.n, p.q, rng);
  simu.multiply(a, b);
  const auto first = simu.report().wall_cycles;
  simu.multiply(a, b);
  EXPECT_EQ(simu.report().wall_cycles, first);  // deterministic, not summed
}

TEST(Sim, CommutativityUnderDomainAsymmetry) {
  // A flows plain, B flows in the Montgomery domain — the product must
  // still be symmetric.
  const auto p = ntt::NttParams::for_degree(256);
  CryptoPimSimulator simu(p);
  Xoshiro256 rng(17);
  const auto a = ntt::sample_uniform(p.n, p.q, rng);
  const auto b = ntt::sample_uniform(p.n, p.q, rng);
  EXPECT_EQ(simu.multiply(a, b), simu.multiply(b, a));
}

TEST(Sim, StageCyclesSumToWallCycles) {
  // SimReport invariant across moduli and degrees: the per-stage ledger
  // accounts for every wall cycle, with names parallel to the cycles.
  // (q = 7681 only supports n <= 256: 7680 = 2^9 * 15 has no 2048th
  // root, so that combination must be rejected at construction.)
  for (const std::uint32_t q : {7681u, 12289u, 786433u}) {
    for (const std::uint32_t n : {256u, 1024u}) {
      if ((q - 1) % (2 * n) != 0) {
        EXPECT_THROW(ntt::NttParams::make(n, q), std::invalid_argument)
            << "n=" << n << " q=" << q;
        continue;
      }
      const auto p = ntt::NttParams::make(n, q);
      CryptoPimSimulator simu(p);
      Xoshiro256 rng(n ^ q);
      const auto a = ntt::sample_uniform(n, q, rng);
      const auto b = ntt::sample_uniform(n, q, rng);
      simu.multiply(a, b);
      const auto& rep = simu.report();
      ASSERT_FALSE(rep.stage_cycles.empty());
      ASSERT_EQ(rep.stage_names.size(), rep.stage_cycles.size());
      std::uint64_t sum = 0;
      for (const auto c : rep.stage_cycles) sum += c;
      EXPECT_EQ(sum, rep.wall_cycles) << "n=" << n << " q=" << q;
    }
  }
}

}  // namespace
}  // namespace cryptopim::sim
