// Tests for the RNS/CRT layer (src/ntt/rns.*): basis generation, CRT
// round trips, and negacyclic multiplication mod a multi-limb Q verified
// against a 128-bit schoolbook oracle.
#include "ntt/rns.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ntt/modular.h"

namespace cryptopim::ntt {
namespace {

std::vector<U128> random_wide(std::uint32_t n, U128 bound, Xoshiro256& rng) {
  std::vector<U128> v(n);
  for (auto& x : v) {
    const U128 r = (static_cast<U128>(rng.next()) << 64) | rng.next();
    x = r % bound;
  }
  return v;
}

// Ground truth: negacyclic schoolbook with 128-bit coefficients mod Q.
std::vector<U128> schoolbook_wide(std::span<const U128> a,
                                  std::span<const U128> b, U128 q) {
  const std::size_t n = a.size();
  std::vector<U128> c(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const U128 prod = mulmod_u128(a[i], b[j], q);
      const std::size_t k = i + j;
      if (k < n) {
        c[k] = c[k] + prod;
        if (c[k] >= q) c[k] -= q;
      } else {
        c[k - n] = c[k - n] >= prod ? c[k - n] - prod : c[k - n] + q - prod;
      }
    }
  }
  return c;
}

TEST(MulModU128, MatchesNativeForSmallOperands) {
  Xoshiro256 rng(1);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t a = rng.next_bits(30);
    const std::uint64_t b = rng.next_bits(30);
    const std::uint64_t m = rng.next_bits(31) | 1u;
    EXPECT_EQ(static_cast<std::uint64_t>(mulmod_u128(a, b, m)),
              (a * b) % m);
  }
}

TEST(MulModU128, WideOperands) {
  // (2^100) * (2^20) mod (2^120 + 1) == 2^120 mod (2^120+1) == 2^120.
  const U128 m = (U128{1} << 120) + 1;
  EXPECT_EQ(mulmod_u128(U128{1} << 100, U128{1} << 20, m), U128{1} << 120);
  // a * (m-1) mod m == m - a.
  const U128 a = 123456789;
  EXPECT_EQ(mulmod_u128(a, m - 1, m), m - a);
}

TEST(RnsBasis, GeneratesDistinctNttFriendlyPrimes) {
  const auto basis = RnsBasis::generate(1024, 4, 20);
  ASSERT_EQ(basis.size(), 4u);
  U128 product = 1;
  for (std::size_t i = 0; i < basis.size(); ++i) {
    const std::uint32_t q = basis.prime(i);
    EXPECT_TRUE(is_prime(q));
    EXPECT_EQ((q - 1) % (2 * 1024), 0u) << q;
    EXPECT_LT(q, 1u << 20);
    for (std::size_t j = 0; j < i; ++j) EXPECT_NE(q, basis.prime(j));
    product *= q;
  }
  EXPECT_EQ(basis.modulus(), product);
}

TEST(RnsBasis, ErrorsOnBadRequests) {
  EXPECT_THROW(RnsBasis::generate(1024, 0), std::invalid_argument);
  EXPECT_THROW(RnsBasis::generate(1024, 4, 40), std::invalid_argument);
  // Too few 12-bit primes ≡ 1 mod 2048.
  EXPECT_THROW(RnsBasis::generate(1024, 8, 12), std::runtime_error);
}

TEST(RnsBasis, CrtRoundTrip) {
  const auto basis = RnsBasis::generate(256, 5, 20);
  Xoshiro256 rng(7);
  const auto coeffs = random_wide(256, basis.modulus(), rng);
  const auto rns = basis.decompose(coeffs);
  EXPECT_EQ(basis.reconstruct(rns), coeffs);
}

TEST(RnsBasis, ReconstructionIsCanonical) {
  const auto basis = RnsBasis::generate(64, 3, 18);
  Xoshiro256 rng(8);
  const auto coeffs = random_wide(64, basis.modulus(), rng);
  for (const auto c : basis.reconstruct(basis.decompose(coeffs))) {
    EXPECT_LT(c, basis.modulus());
  }
}

TEST(RnsMultiply, MatchesWideSchoolbook) {
  const auto basis = RnsBasis::generate(64, 3, 20);
  Xoshiro256 rng(9);
  const auto a = random_wide(64, basis.modulus(), rng);
  const auto b = random_wide(64, basis.modulus(), rng);
  const auto prod = basis.multiply(basis.decompose(a), basis.decompose(b));
  EXPECT_EQ(basis.reconstruct(prod),
            schoolbook_wide(a, b, basis.modulus()));
}

TEST(RnsMultiply, SingleLimbDegeneratesToPlainNtt) {
  const auto basis = RnsBasis::generate(256, 1, 20);
  const auto p = NttParams::make(256, basis.prime(0));
  GsNttEngine eng(p);
  Xoshiro256 rng(10);
  const auto a = sample_uniform(256, p.q, rng);
  const auto b = sample_uniform(256, p.q, rng);
  std::vector<U128> wa(a.begin(), a.end()), wb(b.begin(), b.end());
  const auto prod = basis.multiply(basis.decompose(wa), basis.decompose(wb));
  const auto expect = eng.negacyclic_multiply(a, b);
  ASSERT_EQ(prod.residues.size(), 1u);
  EXPECT_EQ(prod.residues[0], expect);
}

TEST(RnsAdd, MatchesWideAddition) {
  const auto basis = RnsBasis::generate(32, 4, 20);
  Xoshiro256 rng(11);
  const auto a = random_wide(32, basis.modulus(), rng);
  const auto b = random_wide(32, basis.modulus(), rng);
  const auto sum = basis.add(basis.decompose(a), basis.decompose(b));
  const auto got = basis.reconstruct(sum);
  for (std::size_t i = 0; i < 32; ++i) {
    U128 want = a[i] + b[i];
    if (want >= basis.modulus()) want -= basis.modulus();
    EXPECT_EQ(got[i], want);
  }
}

TEST(RnsMultiply, RingIdentity) {
  // x^{n-1} * x = -1 must survive the CRT round trip.
  const auto basis = RnsBasis::generate(128, 2, 20);
  std::vector<U128> a(128, 0), b(128, 0);
  a[127] = 1;
  b[1] = 1;
  const auto got = basis.reconstruct(
      basis.multiply(basis.decompose(a), basis.decompose(b)));
  EXPECT_EQ(got[0], basis.modulus() - 1);
  for (std::size_t i = 1; i < 128; ++i) EXPECT_EQ(got[i], U128{0});
}

}  // namespace
}  // namespace cryptopim::ntt
