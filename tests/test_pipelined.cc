// Tests for the pipelined streaming simulator (src/sim/pipelined.*): the
// throughput law of the pipelined design, derived from functional stage
// traces, with bit-exact results for every in-flight job.
#include "sim/pipelined.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "model/performance.h"
#include "ntt/ntt.h"

namespace cryptopim::sim {
namespace {

std::vector<std::pair<ntt::Poly, ntt::Poly>> random_pairs(
    const ntt::NttParams& p, std::size_t count, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<std::pair<ntt::Poly, ntt::Poly>> pairs;
  for (std::size_t i = 0; i < count; ++i) {
    pairs.emplace_back(ntt::sample_uniform(p.n, p.q, rng),
                       ntt::sample_uniform(p.n, p.q, rng));
  }
  return pairs;
}

TEST(Pipelined, EveryStreamedResultIsBitExact) {
  const auto p = ntt::NttParams::for_degree(256);
  PipelinedSimulator simu(p);
  const ntt::GsNttEngine eng(p);
  const auto pairs = random_pairs(p, 8, 1);
  const auto results = simu.multiply_stream(pairs);
  ASSERT_EQ(results.size(), 8u);
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(results[i],
              eng.negacyclic_multiply(pairs[i].first, pairs[i].second))
        << "job " << i;
  }
}

TEST(Pipelined, EmptyStream) {
  const auto p = ntt::NttParams::for_degree(64);
  PipelinedSimulator simu(p);
  EXPECT_TRUE(simu.multiply_stream({}).empty());
  EXPECT_EQ(simu.report().jobs, 0u);
}

TEST(Pipelined, MakespanFollowsFillPlusBeats) {
  const auto p = ntt::NttParams::for_degree(256);
  PipelinedSimulator simu(p);
  (void)simu.multiply_stream(random_pairs(p, 5, 2));
  const auto& r = simu.report();
  EXPECT_EQ(r.jobs, 5u);
  EXPECT_EQ(r.fill_cycles, r.beat_cycles * r.depth);
  EXPECT_EQ(r.makespan_cycles, r.fill_cycles + 4 * r.beat_cycles);
}

TEST(Pipelined, ThroughputBeatsNonPipelinedByLargeFactor) {
  // The Fig. 5 claim, at the functional level: a long stream approaches
  // 1/beat, far above the non-pipelined 1/traversal rate.
  const auto p = ntt::NttParams::for_degree(256);
  PipelinedSimulator simu(p);
  (void)simu.multiply_stream(random_pairs(p, 3, 3));
  const auto& r = simu.report();

  CryptoPimSimulator np(p);
  const auto pairs = random_pairs(p, 1, 4);
  (void)np.multiply(pairs[0].first, pairs[0].second);
  const double np_rate =
      1.0 / (np.report().wall_cycles * 1.1e-9);
  EXPECT_GT(r.throughput_per_s / np_rate, 10.0);
}

TEST(Pipelined, ThroughputWithinBandOfAnalyticModel) {
  // Functional stage programs (width-trimmed, q-width datapath) vs the
  // paper-formula model: same order, within 2.5x.
  const auto p = ntt::NttParams::for_degree(512);
  PipelinedSimulator simu(p);
  (void)simu.multiply_stream(random_pairs(p, 2, 5));
  const double model = model::cryptopim_pipelined(512).throughput_per_s;
  const double ratio = simu.report().throughput_per_s / model;
  EXPECT_GT(ratio, 0.5);
  EXPECT_LT(ratio, 2.5);
}

TEST(Pipelined, DepthMatchesNonPipelinedStageTrace) {
  const auto p = ntt::NttParams::for_degree(1024);
  PipelinedSimulator simu(p);
  (void)simu.multiply_stream(random_pairs(p, 2, 6));
  // A-path stages: 1 (psi) + 2*log2n butterflies... the wall path counts
  // psi, forward levels, pointwise, inverse levels, psi-inv:
  // 1 + 10 + 1 + 10 + 1 = 23 for n=1024.
  EXPECT_EQ(simu.report().depth, 23u);
}

TEST(Pipelined, StreamOfIdenticalJobsIsDeterministic) {
  const auto p = ntt::NttParams::for_degree(128);
  PipelinedSimulator simu(p);
  auto pairs = random_pairs(p, 1, 7);
  pairs.push_back(pairs[0]);
  pairs.push_back(pairs[0]);
  const auto results = simu.multiply_stream(pairs);
  EXPECT_EQ(results[0], results[1]);
  EXPECT_EQ(results[1], results[2]);
}

}  // namespace
}  // namespace cryptopim::sim
