// Tests for the shift-add-only NTT multiplier (src/ntt/shiftadd_ntt.*) —
// the software mirror of the accelerator datapath. It must agree with the
// generic-arithmetic engine bit-for-bit on every paper parameter set.
#include "ntt/shiftadd_ntt.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ntt/modular.h"

namespace cryptopim::ntt {
namespace {

class ShiftAddNtt : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ShiftAddNtt, MatchesGenericEngine) {
  const std::uint32_t n = GetParam();
  const auto p = NttParams::for_degree(n);
  const ShiftAddNttMultiplier hw(p);
  const GsNttEngine sw(p);
  Xoshiro256 rng(n + 31);
  for (int rep = 0; rep < 3; ++rep) {
    const auto a = sample_uniform(n, p.q, rng);
    const auto b = sample_uniform(n, p.q, rng);
    ASSERT_EQ(hw.negacyclic_multiply(a, b), sw.negacyclic_multiply(a, b));
  }
}

INSTANTIATE_TEST_SUITE_P(PaperDegrees, ShiftAddNtt,
                         ::testing::Values(16u, 256u, 512u, 1024u, 2048u,
                                           8192u));

TEST(ShiftAddNttEdge, SparseAndExtremeInputs) {
  const auto p = NttParams::for_degree(256);
  const ShiftAddNttMultiplier hw(p);
  const GsNttEngine sw(p);

  // All-(q-1) inputs stress the lazy-reduction bounds hardest.
  Poly max_poly(p.n, p.q - 1);
  EXPECT_EQ(hw.negacyclic_multiply(max_poly, max_poly),
            sw.negacyclic_multiply(max_poly, max_poly));

  // Monomials exercise every twiddle path individually.
  for (const std::uint32_t k : {0u, 1u, 127u, 255u}) {
    Poly mono(p.n, 0);
    mono[k] = p.q - 1;
    EXPECT_EQ(hw.negacyclic_multiply(mono, max_poly),
              sw.negacyclic_multiply(mono, max_poly))
        << "k=" << k;
  }

  // Zero annihilates.
  const Poly zero(p.n, 0);
  EXPECT_EQ(hw.negacyclic_multiply(zero, max_poly), zero);
}

TEST(ShiftAddNttEdge, AllThreeModuli) {
  // One run per modulus family so every Algorithm-3 branch is exercised.
  for (const std::uint32_t n : {256u, 512u, 2048u}) {
    const auto p = NttParams::for_degree(n);
    const ShiftAddNttMultiplier hw(p);
    const GsNttEngine sw(p);
    Xoshiro256 rng(n);
    const auto a = sample_uniform(n, p.q, rng);
    const auto b = sample_uniform(n, p.q, rng);
    EXPECT_EQ(hw.negacyclic_multiply(a, b), sw.negacyclic_multiply(a, b))
        << "q=" << p.q;
  }
}

}  // namespace
}  // namespace cryptopim::ntt
